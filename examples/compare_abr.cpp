// Compare all five ABR schemes of the paper's primary experiment on the
// same sampled network path (something only possible in simulation — real
// RCTs give each session to one scheme, section 5.3).
//
// Trains/loads the Fugu TTP and the Pensieve actor on first use (cached in
// $PUFFER_CACHE_DIR or ./.puffer_model_cache).

#include <cstdio>
#include <memory>
#include <vector>

#include "exp/models.hh"
#include "exp/registry.hh"
#include "media/channel.hh"
#include "media/vbr_source.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "net/trace_models.hh"
#include "sim/session.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  std::printf("Preparing trained artifacts (cached after first run)...\n");
  const exp::SchemeArtifacts artifacts = exp::default_artifacts();

  Rng rng{7};
  const net::PufferPathModel paths;
  const net::NetworkPath path = paths.sample_path(rng, 1200.0);
  std::printf("Shared path: mean %.2f Mbit/s, min RTT %.0f ms\n\n",
              path.trace.mean_rate() * 8.0 / 1e6, path.min_rtt_s * 1e3);

  sim::UserBehavior viewer;
  viewer.watch_intent_s = 480.0;
  viewer.stall_patience_s = 1e9;
  viewer.stall_hazard_per_s = 0.0;
  viewer.quality_hazard_per_s_db = 0.0;

  Table table{{"Scheme", "Stall %", "SSIM (dB)", "SSIM var (dB)",
               "Bitrate (Mbit/s)", "Startup (s)"}};

  for (const auto* name :
       {"Fugu", "MPC-HM", "RobustMPC-HM", "Pensieve", "BBA"}) {
    const auto scheme = exp::make_scheme(name, artifacts);
    scheme->reset_session();

    net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                          net::TcpSender::default_queue_capacity(path)};
    sim::send_preamble(sender);
    media::VbrVideoSource video{media::default_channels()[1], 99};
    Rng stream_rng{1234};  // same in-stream randomness for every scheme

    const sim::StreamOutcome outcome =
        sim::run_stream(sender, *scheme, video, 0, viewer, stream_rng);

    table.add_row({std::string{name},
                   format_fixed(100.0 * outcome.figures.stall_time_s /
                                    outcome.figures.watch_time_s, 3),
                   format_fixed(outcome.figures.ssim_mean_db, 2),
                   format_fixed(outcome.figures.ssim_variation_db, 2),
                   format_fixed(outcome.figures.mean_bitrate_mbps, 2),
                   format_fixed(outcome.figures.startup_delay_s, 2)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("Note: one path is an anecdote, not an experiment — see\n"
              "bench/fig08_main_results for the full randomized trial.\n");
  return 0;
}
