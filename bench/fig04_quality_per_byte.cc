// Figure 4: average SSIM vs average bitrate per scheme. The paper's point:
// schemes that maximize SSIM directly (Fugu, MPC-HM, RobustMPC-HM) deliver
// more quality per byte than schemes that maximize bitrate (Pensieve) or
// pick the best chunk under a rate cap (BBA).

#include <cmath>
#include "bench_common.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  // Quality-per-byte as distance above/below the encoder's rate-quality
  // frontier q(r) = 12.9 + 2.41 ln(r): a scheme spending its bytes well sits
  // above the frontier at its operating bitrate (the scatter's diagonal in
  // the paper's figure).
  const auto frontier_db = [](const double mbps) {
    return 12.9 + 2.41 * std::log(mbps);
  };

  Rng rng{1};
  Table table{{"Scheme", "Avg bitrate (Mbit/s)", "Avg SSIM (dB)",
               "dB above rate-quality frontier"}};
  double pensieve_residual = 0.0;
  double min_ssim_aware_residual = 1e9;
  double fugu_ssim = 0.0, pensieve_ssim = 0.0, pensieve_bitrate = 0.0;

  for (const auto& scheme : trial.schemes) {
    const stats::SchemeSummary summary =
        stats::summarize_scheme(scheme.considered, rng);
    const double residual =
        summary.ssim_mean_db - frontier_db(summary.mean_bitrate_mbps);
    table.add_row({scheme.scheme, format_fixed(summary.mean_bitrate_mbps, 2),
                   format_fixed(summary.ssim_mean_db, 2),
                   format_fixed(residual, 2)});
    if (scheme.scheme == "Pensieve") {
      pensieve_residual = residual;
      pensieve_ssim = summary.ssim_mean_db;
      pensieve_bitrate = summary.mean_bitrate_mbps;
    } else if (scheme.scheme != "BBA") {
      min_ssim_aware_residual = std::min(min_ssim_aware_residual, residual);
    }
    if (scheme.scheme == "Fugu") {
      fugu_ssim = summary.ssim_mean_db;
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // The paper's sharpest Figure-4 claim: the scheme that maximizes bitrate
  // directly (Pensieve) does not reap a commensurate picture-quality
  // benefit — it sits below the SSIM-aware MPC family on the frontier.
  const bool pensieve_inefficient =
      pensieve_residual < min_ssim_aware_residual;
  const bool fugu_tops_quality = fugu_ssim > pensieve_ssim;
  std::printf("Shape checks vs paper:\n"
              "  Pensieve (maximizes bitrate) sits below the SSIM-aware MPC "
              "family on the frontier: %s\n"
              "  SSIM-aware schemes deliver higher absolute quality: %s\n",
              pensieve_inefficient ? "holds" : "VIOLATED",
              fugu_tops_quality ? "holds" : "VIOLATED");
  (void)pensieve_bitrate;
  return pensieve_inefficient && fugu_tops_quality ? 0 : 1;
}
