// fleet_scale: throughput of the fleet engine and of batched TTP inference.
//
//   ./fleet_scale [--smoke] [--sessions N] [--arrivals poisson|diurnal|flash-crowd]
//                 [--rate R] [--threads T] [--shards S] [--contention]
//                 [--faults] [--json PATH] [--trace-out PATH]
//                 [--metrics-out PATH]
//
// Part 1 microbenchmarks one ABR decision's worth of TTP inference three
// ways — scalar forward_one per (step, rung), per-decision fused GEMMs, and
// fleet-style coalescing across sessions — auditing that all three agree
// bit for bit before timing them. Part 2 runs a (sharded) fleet trial and
// reports sessions/sec, chunks/sec and the concurrency profile next to the
// session-sequential baseline, auditing that the merged trial is
// bit-identical to it. Part 3 sweeps the sharded engine over a
// sessions-scale curve (10^2 -> 10^6 synthetic sessions), auditing at each
// point that the sharded run's merged load series matches the single-queue
// run bit for bit. Results land in BENCH_fleet.json (override with --json)
// so the perf trajectory accumulates data.
//
// --contention adds Part 4: a shared-bottleneck curve over group sizes
// (per-group Jain fairness and the induced-stall ratio vs group size),
// each point audited bitwise sharded-vs-single-queue.
//
// --faults adds Part 5: the same fleet population with the fault plane on
// (injected TTP inference failures and session aborts), reporting
// degraded-mode throughput and the harmonic-mean fallback rate, audited
// bitwise 2-shard-vs-sequential including the faults.* counters.
//
// --smoke shrinks everything to seconds and exits non-zero on any mismatch,
// which is what CI runs (with --shards 2 to keep the sharded path covered).
//
// --trace-out writes the Part-2 fleet run as Chrome trace-event JSON
// (chrome://tracing / Perfetto): virtual-time lanes per shard plus a
// concurrency counter lane (both byte-identical across repeat runs), and
// wall-clock lanes per worker from the profiling scopes (not deterministic
// by nature). --metrics-out dumps the run's combined sim-plane metric
// snapshot as JSON.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "abr/bba.hh"
#include "bench_common.hh"
#include "exp/fleet_trial.hh"
#include "exp/registry.hh"
#include "fugu/batch_ttp.hh"
#include "fugu/fugu.hh"
#include "fugu/ttp_predictor.hh"
#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "util/require.hh"
#include "util/thread_pool.hh"

namespace {

using puffer::Rng;
namespace abr = puffer::abr;
namespace exp = puffer::exp;
namespace fugu = puffer::fugu;
namespace media = puffer::media;
namespace obs = puffer::obs;
namespace sim = puffer::sim;

double seconds_since(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct DecisionInputs {
  abr::AbrObservation obs;
  fugu::TtpHistory history;
  std::vector<abr::TxTimeQuery> queries;
};

DecisionInputs make_decision(Rng& rng, const int horizon) {
  DecisionInputs decision;
  decision.obs.buffer_s = rng.uniform(0.0, 15.0);
  decision.obs.tcp.cwnd_pkts = rng.uniform(10.0, 300.0);
  decision.obs.tcp.in_flight_pkts = rng.uniform(0.0, 200.0);
  decision.obs.tcp.min_rtt_s = rng.uniform(0.01, 0.3);
  decision.obs.tcp.srtt_s = rng.uniform(0.01, 0.4);
  decision.obs.tcp.delivery_rate_bps = rng.uniform(1e5, 5e7);
  for (int k = 0; k < fugu::kTtpHistory; k++) {
    decision.history.record(rng.uniform(0.1, 4.0), rng.uniform(0.05, 3.0),
                            fugu::kTtpHistory);
  }
  for (int step = 0; step < horizon; step++) {
    for (int rung = 0; rung < media::kNumRungs; rung++) {
      decision.queries.push_back({step, rng.uniform_int(50'000, 6'000'000)});
    }
  }
  return decision;
}

void prime_predictor(abr::TxTimePredictor& predictor,
                     const DecisionInputs& decision) {
  predictor.reset_session();
  for (size_t i = 0; i < decision.history.sizes_mb.size(); i++) {
    abr::ChunkRecord record;
    record.size_bytes =
        static_cast<int64_t>(decision.history.sizes_mb[i] * 1e6);
    record.transmission_time_s = decision.history.tx_times_s[i];
    predictor.on_chunk_complete(record);
  }
  predictor.begin_decision(decision.obs);
}

bool same_bits(const std::vector<abr::TxTimeDistribution>& a,
               const std::vector<abr::TxTimeDistribution>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].size() != b[i].size()) {
      return false;
    }
    for (size_t j = 0; j < a[i].size(); j++) {
      if (std::memcmp(&a[i][j].time_s, &b[i][j].time_s, sizeof(double)) != 0 ||
          std::memcmp(&a[i][j].probability, &b[i][j].probability,
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

struct InferenceNumbers {
  double scalar_rows_per_s = 0.0;
  double batched_rows_per_s = 0.0;
  bool identical = false;
};

/// Batched-vs-scalar inference microbenchmark (and bitwise audit). The
/// cross-session coalescing on top of this is measured by the fleet run
/// below (coalesced rows / GEMM calls).
InferenceNumbers bench_inference(const int decisions) {
  const auto model =
      std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 20190119);
  const int horizon = model->config().horizon;

  Rng rng{1};
  std::vector<DecisionInputs> inputs;
  inputs.reserve(static_cast<size_t>(decisions));
  for (int d = 0; d < decisions; d++) {
    inputs.push_back(make_decision(rng, horizon));
  }
  const double rows =
      static_cast<double>(decisions) * horizon * media::kNumRungs;

  InferenceNumbers numbers;
  std::vector<abr::TxTimeDistribution> out, expected;

  // Only the predict_batch calls are timed: the per-decision priming
  // (reset + history replay + begin_decision) is identical on both paths
  // and would otherwise dilute the ratio the JSON entry tracks.
  double scalar_s = 0.0, batched_s = 0.0;

  // Scalar: forward_one per (step, rung) — the legacy TtpPredictor path.
  fugu::TtpPredictor scalar{model};
  for (const DecisionInputs& decision : inputs) {
    prime_predictor(scalar, decision);
    const auto start = std::chrono::steady_clock::now();
    scalar.predict_batch(decision.queries, out);  // default loop
    scalar_s += seconds_since(start);
  }
  numbers.scalar_rows_per_s = rows / scalar_s;

  // Per-decision fused GEMMs.
  fugu::BatchTtpPredictor batched{model};
  for (const DecisionInputs& decision : inputs) {
    prime_predictor(batched, decision);
    const auto start = std::chrono::steady_clock::now();
    batched.predict_batch(decision.queries, out);
    batched_s += seconds_since(start);
  }
  numbers.batched_rows_per_s = rows / batched_s;

  // Bitwise audit: scalar vs batched on every decision.
  numbers.identical = true;
  for (const DecisionInputs& decision : inputs) {
    prime_predictor(scalar, decision);
    scalar.predict_batch(decision.queries, expected);
    prime_predictor(batched, decision);
    batched.predict_batch(decision.queries, out);
    if (!same_bits(expected, out)) {
      numbers.identical = false;
    }
  }
  return numbers;
}

exp::SchemeFactory fleet_factory() {
  static const auto model =
      std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 20190119);
  return [](const std::string& name) -> std::unique_ptr<abr::AbrAlgorithm> {
    if (name == "Fugu") {
      return fugu::make_fugu(model, name);
    }
    return exp::make_scheme(name, exp::SchemeArtifacts{});
  };
}

/// Minimal fleet task for the sessions-scale sweep: a fixed decision count
/// with a per-session (deterministic) inter-decision gap and no inference,
/// so the sweep times the engine itself — queues, sharding, load
/// accounting — rather than ABR compute, and 10^6 sessions stay tractable.
class SyntheticTask final : public sim::FleetTask {
 public:
  SyntheticTask(const int64_t id, const int decisions)
      : decisions_left_(decisions),
        gap_s_(0.5 + 0.001 * static_cast<double>(id % 97)) {}

  Step prepare() override {
    return decisions_left_ > 0 ? Step::kDecision : Step::kDone;
  }
  bool stage(fugu::TtpInferenceBatch& /*batch*/) override { return false; }
  void finish_chunk() override {
    elapsed_ += gap_s_;
    decisions_left_--;
  }
  [[nodiscard]] double elapsed_s() const override { return elapsed_; }

 private:
  int64_t decisions_left_;
  double gap_s_;
  double elapsed_ = 0.0;
};

struct CurvePoint {
  int64_t sessions = 0;
  double wall_s = 0.0;
  double chunks_per_s = 0.0;
  int peak_concurrency = 0;
  double mean_concurrency = 0.0;
  bool shard_identical = false;  ///< sharded == single-queue, bitwise
};

/// Decisions per synthetic session in the sessions-scale sweep.
constexpr int kCurveDecisions = 20;

/// One sessions-scale sweep point: `sessions` synthetic sessions spread
/// uniformly over an hour of virtual time, run sharded (timed) and with a
/// single queue (audit baseline).
CurvePoint run_curve_point(const int64_t sessions, const int threads,
                           const int shards) {
  std::vector<double> arrivals(static_cast<size_t>(sessions));
  for (int64_t i = 0; i < sessions; i++) {
    arrivals[static_cast<size_t>(i)] =
        static_cast<double>(i) * (3600.0 / static_cast<double>(sessions));
  }
  const auto factory = [](const int64_t id,
                          const int /*shard*/) -> std::unique_ptr<sim::FleetTask> {
    return std::make_unique<SyntheticTask>(id, kCurveDecisions);
  };

  sim::FleetConfig sharded;
  sharded.num_threads = threads;
  sharded.num_shards = shards;
  const auto start = std::chrono::steady_clock::now();
  const sim::FleetRunStats run =
      sim::FleetEngine{sharded}.run(arrivals, factory);
  const double wall_s = seconds_since(start);

  sim::FleetConfig single = sharded;
  single.num_shards = 1;
  const sim::FleetRunStats baseline =
      sim::FleetEngine{single}.run(arrivals, factory);

  CurvePoint point;
  point.sessions = sessions;
  point.wall_s = wall_s;
  point.chunks_per_s = static_cast<double>(run.decisions) / wall_s;
  point.peak_concurrency = run.load.peak();
  point.mean_concurrency = run.load.time_weighted_mean();
  point.shard_identical =
      run.decisions == baseline.decisions &&
      run.sessions == baseline.sessions &&
      std::memcmp(&run.virtual_duration_s, &baseline.virtual_duration_s,
                  sizeof(double)) == 0 &&
      run.load.points().size() == baseline.load.points().size();
  if (point.shard_identical) {
    // Field-by-field (a whole-Point memcmp would read struct padding).
    for (size_t i = 0; i < run.load.points().size(); i++) {
      const auto& p = run.load.points()[i];
      const auto& q = baseline.load.points()[i];
      if (std::memcmp(&p.time_s, &q.time_s, sizeof(double)) != 0 ||
          p.level != q.level) {
        point.shard_identical = false;
      }
    }
  }
  return point;
}

struct ContentionPoint {
  int group_size = 1;
  double mean_fairness = 1.0;   ///< mean per-group Jain index
  double min_fairness = 1.0;    ///< worst group
  double stall_ratio = 0.0;     ///< total stall time / total watch time
  double wall_s = 0.0;
  bool shard_identical = false;  ///< sharded == single-queue, bitwise
};

/// One contention-curve point: the same fleet population behind shared
/// edge bottlenecks of `group_size` flows, run single-queue (timed) and
/// with two shards (audit: figures + fairness must match bit for bit).
ContentionPoint run_contention_point(const int group_size, const int sessions,
                                     const int threads) {
  exp::FleetTrialConfig config;
  config.trial.schemes = {"Fugu", "MPC-HM", "BBA"};
  config.trial.sessions_per_scheme = sessions / 3;
  config.trial.seed = 20190119;
  config.trial.num_threads = threads;
  config.trial.stream.max_stream_chunks = 60;
  config.trial.scenario = puffer::net::ScenarioSpec{"edge-contention"};
  config.arrivals.kind = "poisson";
  config.arrivals.rate_per_s = 0.05;
  config.contention = exp::make_contention_spec("edge", group_size);

  config.num_shards = 1;
  const auto start = std::chrono::steady_clock::now();
  const exp::FleetTrialResult base =
      exp::run_fleet_trial(config, fleet_factory());
  const double wall_s = seconds_since(start);

  config.num_shards = 2;
  const exp::FleetTrialResult sharded =
      exp::run_fleet_trial(config, fleet_factory());

  ContentionPoint point;
  point.group_size = group_size;
  point.wall_s = wall_s;

  double stall_s = 0.0, watch_s = 0.0;
  for (const auto& scheme : base.trial.schemes) {
    for (const auto& figures : scheme.considered) {
      stall_s += figures.stall_time_s;
      watch_s += figures.watch_time_s;
    }
  }
  point.stall_ratio = watch_s > 0.0 ? stall_s / watch_s : 0.0;

  double fairness_sum = 0.0;
  for (const double fairness : base.group_fairness) {
    fairness_sum += fairness;
    point.min_fairness = std::min(point.min_fairness, fairness);
  }
  point.mean_fairness =
      base.group_fairness.empty()
          ? 1.0
          : fairness_sum / static_cast<double>(base.group_fairness.size());

  point.shard_identical =
      base.fleet.sessions == sharded.fleet.sessions &&
      base.fleet.decisions == sharded.fleet.decisions &&
      base.group_fairness.size() == sharded.group_fairness.size();
  if (point.shard_identical) {
    for (size_t g = 0; g < base.group_fairness.size(); g++) {
      if (std::memcmp(&base.group_fairness[g], &sharded.group_fairness[g],
                      sizeof(double)) != 0) {
        point.shard_identical = false;
      }
    }
    for (size_t s = 0; s < base.trial.schemes.size(); s++) {
      const auto& a = base.trial.schemes[s];
      const auto& b = sharded.trial.schemes[s];
      if (a.considered.size() != b.considered.size()) {
        point.shard_identical = false;
        continue;
      }
      for (size_t i = 0; i < a.considered.size(); i++) {
        if (std::memcmp(&a.considered[i], &b.considered[i],
                        sizeof(a.considered[i])) != 0) {
          point.shard_identical = false;
        }
      }
    }
  }
  return point;
}

struct FaultsPoint {
  double wall_s = 0.0;
  double chunks_per_s = 0.0;      ///< degraded-mode throughput (faults on)
  double fallback_rate = 0.0;     ///< fallback decisions / TTP decisions
  int64_t ttp_decisions = 0;
  int64_t ttp_failures = 0;
  int64_t fallback_decisions = 0;
  int64_t session_aborts = 0;
  int64_t degraded_sessions = 0;
  bool shard_identical = false;  ///< 2-shard == sequential, bitwise
};

int64_t metric_value(const obs::MetricSnapshot& snapshot,
                     const std::string& name) {
  const obs::MetricSnapshot::Metric* metric = snapshot.find(name);
  return metric != nullptr ? metric->value : 0;
}

/// --faults: the Part-2 fleet population with the fault plane enabled (TTP
/// inference failures driving harmonic-mean fallback, plus mid-stream
/// aborts), run single-queue (timed) and with two shards. The audit demands
/// bitwise-identical figures AND identical faults.* counters — the fault
/// schedule must be invariant to sharding.
FaultsPoint run_faults_point(const int sessions, const int threads) {
  exp::FleetTrialConfig config;
  config.trial.schemes = {"Fugu", "MPC-HM", "BBA"};
  config.trial.sessions_per_scheme = sessions / 3;
  config.trial.seed = 20190119;
  config.trial.num_threads = threads;
  config.trial.stream.max_stream_chunks = 60;
  config.arrivals.kind = "poisson";
  config.arrivals.rate_per_s = 0.2;
  config.trial.faults.enabled = true;
  config.trial.faults.seed = 7;
  config.trial.faults.add(sim::kFaultTtpInference, 0.05);
  config.trial.faults.add(sim::kFaultSessionAbort, 0.01);

  static const auto model =
      std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 20190119);
  exp::SchemeArtifacts artifacts;
  artifacts.ttp_insitu = model;

  config.num_shards = 1;
  const auto start = std::chrono::steady_clock::now();
  const exp::FleetTrialResult base = exp::run_fleet_trial(config, artifacts);
  const double wall_s = seconds_since(start);

  config.num_shards = 2;
  const exp::FleetTrialResult sharded = exp::run_fleet_trial(config, artifacts);

  FaultsPoint point;
  point.wall_s = wall_s;
  point.chunks_per_s = static_cast<double>(base.fleet.decisions) / wall_s;
  point.ttp_decisions = metric_value(base.metrics, "faults.ttp_decisions");
  point.ttp_failures = metric_value(base.metrics, "faults.ttp_failures");
  point.fallback_decisions =
      metric_value(base.metrics, "faults.ttp_fallback_decisions");
  point.session_aborts = metric_value(base.metrics, "faults.session_aborts");
  point.degraded_sessions =
      metric_value(base.metrics, "faults.degraded_sessions");
  point.fallback_rate =
      point.ttp_decisions > 0
          ? static_cast<double>(point.fallback_decisions) /
                static_cast<double>(point.ttp_decisions)
          : 0.0;

  point.shard_identical =
      base.fleet.sessions == sharded.fleet.sessions &&
      base.fleet.decisions == sharded.fleet.decisions;
  for (const std::string& name :
       {std::string{"faults.ttp_decisions"}, std::string{"faults.ttp_failures"},
        std::string{"faults.ttp_fallback_decisions"},
        std::string{"faults.ttp_engagements"},
        std::string{"faults.degraded_sessions"},
        std::string{"faults.session_aborts"}, std::string{"faults.injected"}}) {
    if (metric_value(base.metrics, name) !=
        metric_value(sharded.metrics, name)) {
      point.shard_identical = false;
    }
  }
  if (point.shard_identical) {
    for (size_t s = 0; s < base.trial.schemes.size(); s++) {
      const auto& a = base.trial.schemes[s];
      const auto& b = sharded.trial.schemes[s];
      if (a.considered.size() != b.considered.size() ||
          a.consort.considered != b.consort.considered) {
        point.shard_identical = false;
        continue;
      }
      for (size_t i = 0; i < a.considered.size(); i++) {
        if (std::memcmp(&a.considered[i], &b.considered[i],
                        sizeof(a.considered[i])) != 0) {
          point.shard_identical = false;
        }
      }
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool contention = false;
  bool faults = false;
  int sessions = 200;
  int threads = 0;
  int shards = 0;
  double rate = 0.2;
  std::string arrivals = "poisson";
  std::string json_path = "BENCH_fleet.json";
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      puffer::require(i + 1 < argc, "fleet_scale: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--contention") {
      contention = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--sessions") {
      sessions = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      threads = std::atoi(next().c_str());
    } else if (arg == "--shards") {
      shards = std::atoi(next().c_str());
    } else if (arg == "--rate") {
      rate = std::atof(next().c_str());
    } else if (arg == "--arrivals") {
      arrivals = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: fleet_scale [--smoke] [--sessions N] [--threads T] "
                   "[--shards S] [--rate R] [--arrivals KIND] [--contention] "
                   "[--faults] [--json PATH] [--trace-out PATH] "
                   "[--metrics-out PATH]\n");
      return 2;
    }
  }
  if (smoke) {
    sessions = 30;
  }

  // Part 1: batched-vs-scalar TTP inference.
  std::printf("== batched TTP inference (%s) ==\n",
              smoke ? "smoke" : "full");
  const InferenceNumbers inference = bench_inference(smoke ? 200 : 2000);
  std::printf("  scalar forward_one : %12.0f rows/s\n",
              inference.scalar_rows_per_s);
  std::printf("  per-decision GEMM  : %12.0f rows/s  (%.2fx)\n",
              inference.batched_rows_per_s,
              inference.batched_rows_per_s / inference.scalar_rows_per_s);
  std::printf("  bitwise identical  : %s\n",
              inference.identical ? "yes" : "NO — MISMATCH");

  // Part 2: fleet trial vs the session-sequential baseline.
  exp::FleetTrialConfig config;
  config.trial.schemes = {"Fugu", "MPC-HM", "BBA"};
  config.trial.sessions_per_scheme = sessions / 3;
  config.trial.seed = 20190119;
  config.trial.num_threads = threads;
  config.trial.stream.max_stream_chunks = smoke ? 60 : 400;
  config.num_shards = shards;
  config.arrivals.kind = arrivals;
  config.arrivals.rate_per_s = rate;
  obs::TraceWriter trace;

  std::printf("\n== fleet engine: %zu schemes x %d sessions, %s arrivals "
              "(rate %.3g/s, %d threads, %d shards requested) ==\n",
              config.trial.schemes.size(), config.trial.sessions_per_scheme,
              arrivals.c_str(), rate, threads, shards);

  auto start = std::chrono::steady_clock::now();
  const exp::TrialResult sequential =
      exp::run_trial(config.trial, fleet_factory());
  const double sequential_s = seconds_since(start);

  // Warm up the allocator and caches with one untimed, unprofiled fleet
  // run: the first fleet run of the process is consistently ~10-15% slower
  // than a repeat (arena/malloc warmup), which would otherwise be charged
  // to whichever timed run goes first and swamp the real gate overhead.
  // The warmup run doubles as the virtual-time trace capture when
  // --trace-out is set — the sim plane's lanes are byte-identical across
  // runs (test-enforced), and keeping the trace sink out of the timed runs
  // keeps its JSON-rendering cost out of the profiling-overhead ratio.
  obs::set_prof_enabled(false);
  exp::FleetTrialConfig warmup_config = config;
  if (!trace_path.empty()) {
    warmup_config.trace = &trace;
  }
  static_cast<void>(exp::run_fleet_trial(warmup_config, fleet_factory()));
  obs::set_prof_enabled(true);

  // Timed runs, alternating profiling on/off twice: single-core CI boxes
  // show several percent of run-to-run wall variance, so the overhead
  // ratio compares the best-of-two walls per mode rather than one sample
  // each. The perf plane is reset before each profiled run (Part 1 and
  // the sequential baseline also hit the profiled scopes), so the
  // per-phase wall times reported below describe exactly one fleet run.
  // With PUFFER_PROFILING=OFF both modes are no-ops and the ratio
  // sits at ~1.
  exp::FleetTrialResult fleet;
  obs::ProfSnapshot prof;
  double fleet_s = 0.0;
  double fleet_off_s = 0.0;
  for (int rep = 0; rep < 2; rep++) {
    obs::prof_reset();
    start = std::chrono::steady_clock::now();
    exp::FleetTrialResult on_run =
        exp::run_fleet_trial(config, fleet_factory());
    const double on_s = seconds_since(start);
    prof = obs::prof_snapshot();
    if (rep == 0) {
      fleet = std::move(on_run);
      fleet_s = on_s;
    } else {
      fleet_s = std::min(fleet_s, on_s);
    }

    obs::set_prof_enabled(false);
    start = std::chrono::steady_clock::now();
    const exp::FleetTrialResult off_run =
        exp::run_fleet_trial(config, fleet_factory());
    const double off_s = seconds_since(start);
    obs::set_prof_enabled(true);
    fleet_off_s = rep == 0 ? off_s : std::min(fleet_off_s, off_s);
    puffer::require(off_run.fleet.decisions == fleet.fleet.decisions,
            "fleet_scale: profiling gate changed the simulation");
  }

  bool figures_identical = true;
  for (size_t s = 0; s < sequential.schemes.size(); s++) {
    const auto& a = sequential.schemes[s];
    const auto& b = fleet.trial.schemes[s];
    if (a.considered.size() != b.considered.size() ||
        a.consort.considered != b.consort.considered) {
      figures_identical = false;
      continue;
    }
    for (size_t i = 0; i < a.considered.size(); i++) {
      if (std::memcmp(&a.considered[i], &b.considered[i],
                      sizeof(a.considered[i])) != 0) {
        figures_identical = false;
      }
    }
  }

  const double sessions_per_s =
      static_cast<double>(fleet.fleet.sessions) / fleet_s;
  const double chunks_per_s =
      static_cast<double>(fleet.fleet.decisions) / fleet_s;
  const double off_chunks_per_s =
      static_cast<double>(fleet.fleet.decisions) / fleet_off_s;
  const double overhead_ratio =
      chunks_per_s > 0.0 ? off_chunks_per_s / chunks_per_s : 0.0;
  std::printf("  sequential baseline : %8.2f s\n", sequential_s);
  std::printf("  fleet run           : %8.2f s  (%.0f sessions/s, "
              "%.0f chunks/s wall)\n",
              fleet_s, sessions_per_s, chunks_per_s);
  std::printf("  profiling overhead  : %8.2f s unprofiled  (%.0f chunks/s; "
              "off/on ratio %.4f)\n",
              fleet_off_s, off_chunks_per_s, overhead_ratio);
  std::printf("  figure-identical    : %s\n",
              figures_identical ? "yes" : "NO — MISMATCH");
  std::printf("  virtual duration    : %8.0f s\n",
              fleet.fleet.virtual_duration_s);
  std::printf("  peak concurrency    : %8d sessions\n",
              fleet.fleet.load.peak());
  std::printf("  mean concurrency    : %8.2f sessions\n",
              fleet.fleet.load.time_weighted_mean());
  std::printf("  decisions           : %8lld  (%lld coalesced rows, "
              "%lld GEMMs, %lld inline)\n",
              static_cast<long long>(fleet.fleet.decisions),
              static_cast<long long>(fleet.fleet.coalesced_rows),
              static_cast<long long>(fleet.fleet.gemm_calls),
              static_cast<long long>(fleet.fleet.inline_decisions));
  std::printf("  shards / workers    : %8d / %d\n", fleet.fleet.num_shards,
              fleet.fleet.num_workers);

  // Per-shard event counts from the deterministic registry (sim plane).
  std::vector<int64_t> shard_arrival_counts, shard_decision_counts,
      shard_gemm_counts, shard_row_counts;
  for (const obs::MetricSnapshot& shard : fleet.fleet.shard_metrics) {
    const auto value = [&shard](const std::string& name) -> int64_t {
      const obs::MetricSnapshot::Metric* metric = shard.find(name);
      return metric != nullptr ? metric->value : 0;
    };
    shard_arrival_counts.push_back(value("fleet.arrivals"));
    shard_decision_counts.push_back(value("fleet.decisions"));
    shard_gemm_counts.push_back(value("fleet.gemm_calls"));
    shard_row_counts.push_back(value("fleet.coalesced_rows"));
  }
  std::printf("  per-shard decisions :");
  for (const int64_t n : shard_decision_counts) {
    std::printf(" %lld", static_cast<long long>(n));
  }
  std::printf("\n");

  // Per-phase wall time from the profiling scopes (perf plane; empty when
  // PUFFER_PROFILING=OFF).
  const std::vector<obs::ProfScopeStats> merged_scopes = prof.merged();
  const std::vector<std::string> phase_scopes = {
      "fleet.shard", "fleet.admit", "fleet.coalesce",
      "fleet.finish", "fleet.record", "nn.gemm", "nn.gemm.pack"};
  for (const std::string& name : phase_scopes) {
    const obs::ProfScopeStats* scope =
        obs::ProfSnapshot::find(merged_scopes, name);
    if (scope != nullptr) {
      std::printf("  wall %-15s: %10.1f ms over %lld scopes\n", name.c_str(),
                  static_cast<double>(scope->total_ns) / 1e6,
                  static_cast<long long>(scope->count));
    }
  }

  // Two-plane trace export, assembled before the curve runs below so the
  // wall lanes cover exactly the fleet run: the engine already appended its
  // virtual-time shard lanes during run(); add the deterministic
  // concurrency counter lane, then the perf plane's wall lanes.
  if (!trace_path.empty()) {
    for (const auto& point : fleet.fleet.load.export_points()) {
      trace.counter(obs::kSimTracePid, "concurrency", point.time_s * 1e6,
                    point.level);
    }
    obs::prof_export_trace(trace);
    trace.write_file(trace_path);
    std::printf("  wrote %s (%zu trace events)\n", trace_path.c_str(),
                trace.event_count());
  }
  if (!metrics_path.empty()) {
    std::FILE* file = std::fopen(metrics_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", metrics_path.c_str());
    } else {
      const std::string body = fleet.metrics.to_json();
      std::fwrite(body.data(), 1, body.size(), file);
      std::fclose(file);
      std::printf("  wrote %s\n", metrics_path.c_str());
    }
  }

  // Part 3: sessions-scale concurrency curve on the synthetic engine sweep,
  // each point audited sharded-vs-single-queue.
  std::vector<int64_t> curve_sessions = {100, 1'000, 10'000, 100'000,
                                         1'000'000};
  if (smoke) {
    curve_sessions = {100, 1'000, 10'000};
  }
  std::printf("\n== sessions-scale curve (synthetic tasks, %d shards "
              "requested) ==\n",
              shards);
  std::vector<CurvePoint> curve;
  bool curve_identical = true;
  for (const int64_t n : curve_sessions) {
    curve.push_back(run_curve_point(n, threads, shards));
    const CurvePoint& point = curve.back();
    curve_identical = curve_identical && point.shard_identical;
    std::printf("  %8lld sessions: %10.0f chunks/s, peak %7d, mean %10.1f, "
                "%7.3f s wall, shard-identical %s\n",
                static_cast<long long>(point.sessions), point.chunks_per_s,
                point.peak_concurrency, point.mean_concurrency, point.wall_s,
                point.shard_identical ? "yes" : "NO — MISMATCH");
  }

  // Part 4 (--contention): shared-bottleneck curve over group sizes. Group
  // size 1 is the uncontended baseline for the induced-stall ratio.
  std::vector<ContentionPoint> contention_curve;
  bool contention_identical = true;
  if (contention) {
    std::vector<int> group_sizes = {1, 2, 4, 8};
    if (smoke) {
      group_sizes = {1, 2, 4};
    }
    const int contention_sessions = smoke ? 24 : std::max(sessions, 48);
    std::printf("\n== contention curve (edge topology, %d sessions, "
                "2-shard audit) ==\n",
                contention_sessions);
    for (const int g : group_sizes) {
      contention_curve.push_back(
          run_contention_point(g, contention_sessions, threads));
      const ContentionPoint& point = contention_curve.back();
      contention_identical = contention_identical && point.shard_identical;
      const double baseline = contention_curve.front().stall_ratio;
      const double induced =
          baseline > 0.0 ? point.stall_ratio / baseline : 0.0;
      std::printf("  group %2d: fairness mean %6.4f min %6.4f, stall %7.5f "
                  "(induced %5.2fx), %6.2f s wall, shard-identical %s\n",
                  point.group_size, point.mean_fairness, point.min_fairness,
                  point.stall_ratio, induced, point.wall_s,
                  point.shard_identical ? "yes" : "NO — MISMATCH");
    }
  }

  // Part 5 (--faults): degraded-mode throughput with the fault plane on,
  // audited bitwise 2-shard-vs-sequential (figures and faults.* counters).
  FaultsPoint faults_point;
  bool faults_identical = true;
  if (faults) {
    const int fault_sessions = smoke ? 24 : std::max(sessions, 48);
    std::printf("\n== fault plane (ttp-inference=0.05, session-abort=0.01, "
                "%d sessions, 2-shard audit) ==\n",
                fault_sessions);
    faults_point = run_faults_point(fault_sessions, threads);
    faults_identical = faults_point.shard_identical;
    std::printf("  degraded throughput : %10.0f chunks/s (%.2f s wall)\n",
                faults_point.chunks_per_s, faults_point.wall_s);
    std::printf("  ttp decisions       : %8lld  (%lld failures, %lld "
                "fallback, rate %.4f)\n",
                static_cast<long long>(faults_point.ttp_decisions),
                static_cast<long long>(faults_point.ttp_failures),
                static_cast<long long>(faults_point.fallback_decisions),
                faults_point.fallback_rate);
    std::printf("  session aborts      : %8lld  (%lld degraded sessions)\n",
                static_cast<long long>(faults_point.session_aborts),
                static_cast<long long>(faults_point.degraded_sessions));
    std::printf("  shard-identical     : %s\n",
                faults_point.shard_identical ? "yes" : "NO — MISMATCH");
  }

  puffer::bench::JsonWriter json;
  json.field("bench", "fleet_scale");
  json.field("smoke", smoke);
  json.field("ttp_scalar_rows_per_s", inference.scalar_rows_per_s, 0);
  json.field("ttp_batched_rows_per_s", inference.batched_rows_per_s, 0);
  json.field("ttp_batched_speedup",
             inference.batched_rows_per_s / inference.scalar_rows_per_s, 3);
  json.field("ttp_bitwise_identical", inference.identical);
  json.field("fleet_sessions", static_cast<int64_t>(fleet.fleet.sessions));
  json.field("fleet_sessions_per_s", sessions_per_s, 2);
  json.field("fleet_chunks_per_s", chunks_per_s, 1);
  json.field("fleet_vs_sequential_wall", sequential_s / fleet_s, 3);
  json.field("fleet_figure_identical", figures_identical);
  json.field("peak_concurrency", fleet.fleet.load.peak());
  json.field("mean_concurrency", fleet.fleet.load.time_weighted_mean(), 2);
  json.field("coalesced_rows", static_cast<int64_t>(fleet.fleet.coalesced_rows));
  json.field("gemm_calls", static_cast<int64_t>(fleet.fleet.gemm_calls));
  json.field("fleet_shards", fleet.fleet.num_shards);
  json.field("fleet_workers", fleet.fleet.num_workers);
  json.field("hardware_threads", puffer::ThreadPool::hardware_threads());
  json.field("shard_arrivals", shard_arrival_counts);
  json.field("shard_decisions", shard_decision_counts);
  json.field("shard_gemm_calls", shard_gemm_counts);
  json.field("shard_coalesced_rows", shard_row_counts);
  for (const std::string& name : phase_scopes) {
    const obs::ProfScopeStats* scope =
        obs::ProfSnapshot::find(merged_scopes, name);
    if (scope != nullptr) {
      json.field("wall_ms." + name,
                 static_cast<double>(scope->total_ns) / 1e6, 2);
      json.field("wall_count." + name, scope->count);
    }
  }
  json.field("profiling_compiled", obs::kProfilingCompiled);
  json.field("profiling_on_chunks_per_s", chunks_per_s, 0);
  json.field("profiling_off_chunks_per_s", off_chunks_per_s, 0);
  json.field("profiling_overhead_ratio", overhead_ratio, 4);
  puffer::bench::metrics_fields(json, fleet.metrics);
  std::vector<int64_t> curve_chunk_rates, curve_peaks;
  std::vector<double> curve_means, curve_walls;
  for (const CurvePoint& point : curve) {
    curve_chunk_rates.push_back(static_cast<int64_t>(point.chunks_per_s));
    curve_peaks.push_back(point.peak_concurrency);
    curve_means.push_back(point.mean_concurrency);
    curve_walls.push_back(point.wall_s);
  }
  json.field("curve_sessions", curve_sessions);
  json.field("curve_chunks_per_s", curve_chunk_rates);
  json.field("curve_peak_concurrency", curve_peaks);
  json.field("curve_mean_concurrency", curve_means, 1);
  json.field("curve_wall_s", curve_walls, 3);
  json.field("curve_shard_identical", curve_identical);
  if (contention) {
    std::vector<int64_t> contention_groups;
    std::vector<double> contention_fairness, contention_min_fairness,
        contention_stall, contention_induced;
    const double baseline_stall = contention_curve.front().stall_ratio;
    for (const ContentionPoint& point : contention_curve) {
      contention_groups.push_back(point.group_size);
      contention_fairness.push_back(point.mean_fairness);
      contention_min_fairness.push_back(point.min_fairness);
      contention_stall.push_back(point.stall_ratio);
      contention_induced.push_back(
          baseline_stall > 0.0 ? point.stall_ratio / baseline_stall : 0.0);
    }
    json.field("contention_group_sizes", contention_groups);
    json.field("contention_mean_fairness", contention_fairness, 4);
    json.field("contention_min_fairness", contention_min_fairness, 4);
    json.field("contention_stall_ratio", contention_stall, 5);
    json.field("contention_induced_stall", contention_induced, 3);
    json.field("contention_shard_identical", contention_identical);
  }
  if (faults) {
    json.field("fleet_faults_chunks_per_s", faults_point.chunks_per_s, 1);
    json.field("fleet_faults_fallback_rate", faults_point.fallback_rate, 4);
    json.field("fleet_faults_ttp_decisions", faults_point.ttp_decisions);
    json.field("fleet_faults_ttp_failures", faults_point.ttp_failures);
    json.field("fleet_faults_fallback_decisions",
               faults_point.fallback_decisions);
    json.field("fleet_faults_session_aborts", faults_point.session_aborts);
    json.field("fleet_faults_degraded_sessions",
               faults_point.degraded_sessions);
    json.field("fleet_faults_shard_identical", faults_identical);
  }
  json.write_file(json_path);

  if (!inference.identical || !figures_identical || !curve_identical ||
      !contention_identical || !faults_identical) {
    std::fprintf(stderr, "fleet_scale: BITWISE AUDIT FAILED\n");
    return 1;
  }
  return 0;
}
