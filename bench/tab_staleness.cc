// Section 4.6's daily-retraining study: the paper compared TTPs trained in
// February/March/April/May against the daily-retrained one between Aug 7 and
// Aug 30, 2019, and "somewhat to our surprise" could not detect a
// difference. The contrast that DOES matter is training in the wrong world:
// the emulation-trained TTP was catastrophic.
//
// We reproduce both: Fugu with the live in-situ TTP, Fugu with a
// "months-stale" in-situ TTP (trained on telemetry collected from an earlier
// period of the same — stationary — deployment), and emulation-trained Fugu.

#include "bench_common.hh"
#include "exp/insitu.hh"
#include "fugu/fugu.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  std::printf("[setup] preparing TTP variants (cached)...\n");
  const auto live_ttp = exp::get_insitu_ttp(42);
  // "Stale" TTP: trained on telemetry from a different (earlier) collection
  // period of the same deployment. The simulated environment is stationary
  // across periods — as, evidently, was Puffer's real one (section 4.6).
  const std::string stale_path = exp::model_cache_dir() + "/ttp_stale.bin";
  std::shared_ptr<const fugu::TtpModel> stale_ttp;
  if (auto cached = exp::try_load_ttp(fugu::TtpConfig{}, stale_path)) {
    stale_ttp = std::make_shared<const fugu::TtpModel>(std::move(*cached));
  } else {
    const fugu::TtpDataset old_period = exp::get_insitu_dataset(1043);
    Rng train_rng{1043};
    fugu::TtpTrainConfig train_config;
    train_config.epochs = 8;
    fugu::TtpModel model = fugu::train_ttp(fugu::TtpConfig{}, old_period, 1,
                                           train_config, train_rng);
    exp::save_ttp(model, stale_path);
    stale_ttp = std::make_shared<const fugu::TtpModel>(std::move(model));
  }
  const auto emulation_ttp = exp::get_emulation_ttp(42);

  exp::TrialConfig config;
  config.schemes = {"Fugu (live TTP)", "Fugu (months-stale TTP)",
                    "Emulation-trained Fugu"};
  config.sessions_per_scheme = bench::sessions_per_scheme(150);
  config.seed = 808;

  const std::string cache_path =
      exp::model_cache_dir() + "/trial_staleness_" +
      std::to_string(config.sessions_per_scheme) + ".bin";
  exp::TrialResult trial;
  if (auto cached = exp::try_load_trial(cache_path)) {
    trial = std::move(*cached);
  } else {
    trial = exp::run_trial(
        config, [&](const std::string& name) -> std::unique_ptr<abr::AbrAlgorithm> {
          if (name == "Fugu (live TTP)") {
            return fugu::make_fugu(live_ttp, name);
          }
          if (name == "Fugu (months-stale TTP)") {
            return fugu::make_fugu(stale_ttp, name);
          }
          return fugu::make_fugu(emulation_ttp, name);
        });
    exp::save_trial(trial, cache_path);
  }

  Rng rng{13};
  Table table{{"Arm", "Stall ratio [95% CI]", "SSIM (dB) +/- SE", "Streams"}};
  stats::SchemeSummary live, stale, emulated;
  for (const auto& scheme : trial.schemes) {
    const stats::SchemeSummary summary =
        stats::summarize_scheme(scheme.considered, rng);
    table.add_row({scheme.scheme,
                   format_percent(summary.stall_ratio.point, 3) + "  [" +
                       format_percent(summary.stall_ratio.lower, 3) + ", " +
                       format_percent(summary.stall_ratio.upper, 3) + "]",
                   format_fixed(summary.ssim_mean_db, 2) + " +/- " +
                       format_fixed(summary.ssim_mean_se_db, 2),
                   std::to_string(summary.num_streams)});
    if (scheme.scheme == "Fugu (live TTP)") {
      live = summary;
    } else if (scheme.scheme == "Fugu (months-stale TTP)") {
      stale = summary;
    } else {
      emulated = summary;
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  const bool indistinguishable = live.stall_ratio.overlaps(stale.stall_ratio);
  std::printf("Shape checks vs paper (section 4.6):\n"
              "  live vs months-stale in-situ TTP statistically "
              "indistinguishable: %s\n",
              indistinguishable ? "holds" : "VIOLATED");
  std::printf("  emulation-trained arm: %.3f%% stalls / %.2f dB vs live "
              "%.3f%% / %.2f dB\n  (within one simulator substrate the "
              "wrong-world TTP degrades rather than collapses —\n  see "
              "EXPERIMENTS.md, Figure 11, for the reproduction boundary).\n",
              100.0 * emulated.stall_ratio.point, emulated.ssim_mean_db,
              100.0 * live.stall_ratio.point, live.ssim_mean_db);
  std::printf("\nConclusion (as in the paper): re-learning daily, in a "
              "stable environment, appears to be overkill.\n");
  return indistinguishable ? 0 : 1;
}
