// Extension / ablation bench: congestion control under the video workload.
//
// Puffer's primary experiment served all five ABR arms over BBR; a separate
// set of streams was assigned CUBIC and excluded from the primary analysis
// (Figure A1: "53,631 streams were assigned CUBIC"). This bench runs the
// same ABR scheme (BBA, the scheme least entangled with prediction) over
// both congestion controls and reports the QoE difference — an ablation of
// the platform design choice DESIGN.md calls out.

#include <memory>

#include "abr/bba.hh"
#include "bench_common.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/cubic.hh"
#include "net/tcp_sender.hh"
#include "sim/session.hh"
#include "sim/user_model.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const int num_streams = bench::sessions_per_scheme(200);
  const net::PufferPathModel paths;
  const sim::UserModel users{21};

  Table table{{"Congestion control", "Stall ratio [95% CI]", "SSIM (dB)",
               "Mean startup (s)", "Streams"}};
  Rng summary_rng{3};

  double stall_ratio[2] = {0.0, 0.0};
  int which = 0;
  for (const std::string cc_name : {"BBR", "CUBIC"}) {
    std::vector<stats::StreamFigures> figures;
    abr::Bba bba;
    Rng rng{404};  // identical stream sequence for both CCs (paired)
    for (int s = 0; s < num_streams; s++) {
      Rng stream_rng = rng.split(static_cast<uint64_t>(s));
      const net::NetworkPath path = paths.sample_path(stream_rng, 2400.0);
      std::unique_ptr<net::CongestionControl> cc;
      if (cc_name == "BBR") {
        cc = std::make_unique<net::BbrModel>();
      } else {
        cc = std::make_unique<net::CubicModel>();
      }
      net::TcpSender sender{path, std::move(cc),
                            net::TcpSender::default_queue_capacity(path)};
      sim::send_preamble(sender);
      bba.reset_session();
      media::VbrVideoSource video{
          media::default_channels()[static_cast<size_t>(s) %
                                    media::kNumChannels],
          static_cast<uint64_t>(s) * 31 + 7};
      sim::UserBehavior viewer = users.sample_stream_behavior(stream_rng);
      viewer.watch_intent_s = std::min(
          std::max(viewer.watch_intent_s, 60.0), 1200.0);
      const sim::StreamOutcome outcome =
          sim::run_stream(sender, bba, video, 0, viewer, stream_rng);
      if (outcome.began_playing && outcome.figures.watch_time_s >= 4.0) {
        figures.push_back(outcome.figures);
      }
    }
    const stats::SchemeSummary summary =
        stats::summarize_scheme(figures, summary_rng);
    stall_ratio[which++] = summary.stall_ratio.point;
    table.add_row({cc_name,
                   format_percent(summary.stall_ratio.point, 3) + "  [" +
                       format_percent(summary.stall_ratio.lower, 3) + ", " +
                       format_percent(summary.stall_ratio.upper, 3) + "]",
                   format_fixed(summary.ssim_mean_db, 2),
                   format_fixed(summary.startup_delay_s, 2),
                   std::to_string(summary.num_streams)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("Both congestion controls must sustain the workload; the "
              "platform's choice of BBR\nis about rate stability under "
              "drop-tail loss, not feasibility.\n");
  // Sanity: neither CC catastrophically stalls the workload.
  return stall_ratio[0] < 0.05 && stall_ratio[1] < 0.05 ? 0 : 1;
}
