// Scenario sweep: every registered path family under every scheme.
//
// For each family in net::scenario_registry() this runs a seeded randomized
// trial with the five standard schemes and reports stall ratio, SSIM, and
// stream counts — the quickest way to see how each scheme degrades as the
// world changes (satellite RTT, cellular fading, prime-time sag, ...), and a
// smoke test that every registered family can drive full sessions.
//
// The "trace-replay" family is exercised end-to-end as well: a Mahimahi-style
// trace file is synthesized from the FCC model, saved, and replayed.
//
// PUFFER_BENCH_SESSIONS overrides sessions per scheme (default 60 here).

#include <cstdio>

#include "bench_common.hh"
#include "net/scenario.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::SchemeArtifacts artifacts = exp::default_artifacts();
  const auto& registry = net::scenario_registry();

  // Synthesize a trace file so trace-replay participates in the sweep.
  const std::string trace_path =
      exp::model_cache_dir() + "/scenario_sweep_fcc.trace";
  {
    Rng rng{4242};
    const net::NetworkPath path =
        net::FccTraceModel{}.sample_path(rng, 1800.0);
    net::TraceFile::from_trace(path.trace).save(trace_path);
  }

  const int sessions = bench::sessions_per_scheme(60);
  Rng summary_rng{17};

  for (const auto& family : registry.names()) {
    exp::TrialConfig config;
    config.sessions_per_scheme = sessions;
    config.seed = 20190119;
    config.scenario.family = family;
    if (family == "trace-replay") {
      config.scenario.trace_path = trace_path;
    }

    std::printf("=== %s ===\n%s\n", family.c_str(),
                registry.description(family).c_str());
    const exp::TrialResult trial =
        exp::run_trial_cached(config, artifacts, "sweep_" + family);

    Table table{{"Scheme", "Stall ratio [95% CI]", "SSIM (dB)",
                 "Startup (s)", "Streams"}};
    for (const auto& scheme : trial.schemes) {
      if (scheme.considered.empty()) {
        continue;
      }
      const stats::SchemeSummary summary =
          stats::summarize_scheme(scheme.considered, summary_rng, 400);
      table.add_row({scheme.scheme,
                     format_percent(summary.stall_ratio.point, 2) + " [" +
                         format_percent(summary.stall_ratio.lower, 2) + ", " +
                         format_percent(summary.stall_ratio.upper, 2) + "]",
                     format_fixed(summary.ssim_mean_db, 2),
                     format_fixed(summary.startup_delay_s, 2),
                     std::to_string(summary.num_streams)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
