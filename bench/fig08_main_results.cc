// Figure 8: main results. Left: all considered streams; right: streams on
// "slow" network paths (mean delivery rate < 6 Mbit/s), which the paper says
// carried 16% of viewing time and 82% of stalls.
//
// Prints, for each panel, every scheme's stall ratio with a bootstrap 95% CI
// and duration-weighted SSIM with its weighted standard error — the exact
// uncertainty machinery of section 3.4.

#include "bench_common.hh"
#include "util/table.hh"

namespace {

void print_panel(const char* title, const puffer::exp::TrialResult& trial,
                 const bool slow_only) {
  using namespace puffer;
  std::printf("%s\n", title);
  Table table{{"Scheme", "Stall ratio [95% CI]", "SSIM (dB) +/- SE",
               "Streams"}};
  Rng rng{8};
  for (const auto& scheme : trial.schemes) {
    const auto streams =
        slow_only ? scheme.slow_paths() : scheme.considered;
    if (streams.empty()) {
      continue;
    }
    const stats::SchemeSummary summary = stats::summarize_scheme(streams, rng);
    table.add_row(
        {scheme.scheme,
         format_percent(summary.stall_ratio.point, 3) + "  [" +
             format_percent(summary.stall_ratio.lower, 3) + ", " +
             format_percent(summary.stall_ratio.upper, 3) + "]",
         format_fixed(summary.ssim_mean_db, 2) + " +/- " +
             format_fixed(summary.ssim_mean_se_db, 2),
         std::to_string(summary.num_streams)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  print_panel("=== Primary experiment (all considered streams) ===", trial,
              false);
  print_panel("=== Slow network paths (mean delivery rate < 6 Mbit/s) ===",
              trial, true);

  // The paper's companion claims about slow paths.
  double all_watch = 0.0, slow_watch = 0.0, all_stall = 0.0, slow_stall = 0.0;
  for (const auto& scheme : trial.schemes) {
    for (const auto& figures : scheme.considered) {
      all_watch += figures.watch_time_s;
      all_stall += figures.stall_time_s;
      if (figures.mean_delivery_rate_mbps < 6.0 &&
          figures.mean_delivery_rate_mbps > 0.0) {
        slow_watch += figures.watch_time_s;
        slow_stall += figures.stall_time_s;
      }
    }
  }
  std::printf("Slow paths carried %.0f%% of viewing time and %.0f%% of "
              "stalls (paper: 16%% and 82%%).\n\n",
              100.0 * slow_watch / all_watch, 100.0 * slow_stall / all_stall);

  // Stall sparsity (section 3.4: only 3% of streams had any stalls).
  int64_t streams = 0, streams_with_stalls = 0;
  for (const auto& scheme : trial.schemes) {
    for (const auto& figures : scheme.considered) {
      streams++;
      if (figures.stall_time_s > 0.0) {
        streams_with_stalls++;
      }
    }
  }
  std::printf("%.1f%% of considered streams had any stall (paper: 3%%).\n",
              100.0 * static_cast<double>(streams_with_stalls) /
                  static_cast<double>(streams));
  return 0;
}
