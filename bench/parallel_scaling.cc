// Wall-clock scaling of the trial engine across worker threads, and a
// bit-identity audit against the serial path. On an N-core machine the
// session loop is embarrassingly parallel, so the trial workload behind
// tests/test_exp.cc and the figure reproductions should speed up
// near-linearly until workers exceed cores.
//
// Usage: parallel_scaling [sessions_per_scheme]   (default 64)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "exp/parallel_trial.hh"
#include "exp/registry.hh"
#include "exp/trial.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace puffer;

double run_once(const exp::TrialConfig& config, exp::TrialResult* out) {
  const exp::SchemeArtifacts none;
  const auto start = std::chrono::steady_clock::now();
  exp::TrialResult trial = exp::run_trial(config, none);
  const auto stop = std::chrono::steady_clock::now();
  if (out != nullptr) {
    *out = std::move(trial);
  }
  return std::chrono::duration<double>(stop - start).count();
}

bool identical(const exp::TrialResult& a, const exp::TrialResult& b) {
  if (a.schemes.size() != b.schemes.size()) {
    return false;
  }
  for (size_t s = 0; s < a.schemes.size(); s++) {
    const auto& x = a.schemes[s];
    const auto& y = b.schemes[s];
    if (x.consort.streams != y.consort.streams ||
        x.considered.size() != y.considered.size()) {
      return false;
    }
    for (size_t i = 0; i < x.considered.size(); i++) {
      if (x.considered[i].watch_time_s != y.considered[i].watch_time_s ||
          x.considered[i].ssim_mean_db != y.considered[i].ssim_mean_db) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  exp::TrialConfig config;
  config.schemes = {"BBA", "MPC-HM"};
  config.sessions_per_scheme = argc > 1 ? std::atoi(argv[1]) : 64;
  config.seed = 7;

  std::printf("trial workload: %zu schemes x %d sessions, %d hardware threads\n\n",
              config.schemes.size(), config.sessions_per_scheme,
              ThreadPool::hardware_threads());

  config.num_threads = 1;
  exp::TrialResult serial;
  const double serial_s = run_once(config, &serial);

  Table table{{"threads", "wall (s)", "speedup", "identical to serial"}};
  table.add_row({"1", format_fixed(serial_s, 2), "1.00x", "-"});
  for (const int threads : {2, 4, 8}) {
    config.num_threads = threads;
    exp::TrialResult parallel;
    const double t = run_once(config, &parallel);
    table.add_row({std::to_string(threads), format_fixed(t, 2),
                   format_fixed(serial_s / t, 2) + "x",
                   identical(serial, parallel) ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
