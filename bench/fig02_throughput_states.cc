// Figure 2: CS2P-style discrete throughput states (2a) vs. a typical Puffer
// session (2b). The paper's point: real Puffer paths do not exhibit the
// small set of discrete states CS2P/Oboe model — their evolution is
// continuous, drifting and heavy-tailed.
//
// Prints both series (200 epochs of 6 s, matched ~2.x Mbit/s mean) and a
// discrete-level census of each.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "net/trace_models.hh"
#include "util/rng.hh"

namespace {

/// Count distinct 0.12 Mbit/s-wide levels a series visits (a crude but
/// effective discreteness detector).
int count_levels(const std::vector<double>& mbps) {
  std::vector<double> levels;
  for (const double value : mbps) {
    bool found = false;
    for (const double level : levels) {
      if (std::abs(level - value) < 0.12) {
        found = true;
        break;
      }
    }
    if (!found) {
      levels.push_back(value);
    }
  }
  return static_cast<int>(levels.size());
}

void print_series(const char* title, const std::vector<double>& mbps) {
  std::printf("%s\n  epoch:  throughput (Mbit/s)\n", title);
  for (size_t i = 0; i < mbps.size(); i += 8) {
    std::printf("  %5zu:  %6.3f\n", i, mbps[i]);
  }
  std::printf("  -> visits ~%d discrete 0.12-Mbit/s levels over %zu epochs\n\n",
              count_levels(mbps), mbps.size());
}

}  // namespace

int main() {
  using namespace puffer;

  const int epochs = 200;
  const double epoch_s = 6.0;

  // (a) CS2P-style Markov model (Figure 4a of [38], reproduced as Fig 2a).
  Rng rng_a{2};
  const net::MarkovTraceModel markov;
  const net::NetworkPath markov_path =
      markov.sample_path(rng_a, epochs * epoch_s);

  // (b) A typical Puffer path with a similar mean (Fig 2b): re-sample until
  // the mean lands close to the Markov model's mean.
  const net::PufferPathModel puffer;
  Rng rng_b{7};
  net::NetworkPath puffer_path = puffer.sample_path(rng_b, epochs * epoch_s);
  for (int tries = 0; tries < 1000; tries++) {
    const double mean_mbps = puffer_path.trace.mean_rate() * 8.0 / 1e6;
    if (mean_mbps > 1.8 && mean_mbps < 3.2) {
      break;
    }
    puffer_path = puffer.sample_path(rng_b, epochs * epoch_s);
  }

  auto to_epoch_series = [&](const net::ThroughputTrace& trace) {
    std::vector<double> mbps;
    for (int e = 0; e < epochs; e++) {
      // Average the trace across the 6 s epoch.
      double total = 0.0;
      const int sub = 12;
      for (int k = 0; k < sub; k++) {
        total += trace.capacity_at(e * epoch_s + (k + 0.5) * epoch_s / sub);
      }
      mbps.push_back(total / sub * 8.0 / 1e6);
    }
    return mbps;
  };

  const auto markov_series = to_epoch_series(markov_path.trace);
  const auto puffer_series = to_epoch_series(puffer_path.trace);

  print_series("(a) CS2P-style session: discrete throughput states",
               markov_series);
  print_series("(b) Typical Puffer session with similar mean throughput",
               puffer_series);

  const int markov_levels = count_levels(markov_series);
  const int puffer_levels = count_levels(puffer_series);
  std::printf("Summary: Markov/CS2P model occupies %d discrete levels; the\n"
              "Puffer-style path occupies %d — no discrete state structure,\n"
              "matching the paper's observation (\"Puffer has not observed\n"
              "CS2P's discrete throughput states\").\n",
              markov_levels, puffer_levels);
  return markov_levels < 8 && puffer_levels > 12 ? 0 : 1;
}
