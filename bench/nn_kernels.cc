// nn_kernels: throughput of the GEMM kernel layer (src/nn/gemm.{hh,cc})
// against the retained naive reference kernels, on the TTP network shape
// (22 -> 64 -> 64 -> 21) that dominates every ABR decision and nightly
// retrain.
//
//   ./nn_kernels [--smoke] [--json PATH]
//
// Measures rows/s for single-row inference (forward_one), batched GEMM
// inference (forward), batched TTP prediction (BatchTtpPredictor), and the
// training step (forward_tape + cross-entropy + backward + Adam), each next
// to its naive-kernel baseline. Before timing anything it audits the kernel
// determinism contract — repeated runs bitwise identical, batched rows
// bitwise equal to single-row results, SIMD bitwise equal to the portable
// fallback, training bitwise reproducible, batched TTP bitwise equal to the
// scalar predictor — and exits non-zero on any mismatch (--smoke shrinks
// the timed sections to seconds; CI runs it).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "fugu/batch_ttp.hh"
#include "fugu/ttp.hh"
#include "fugu/ttp_predictor.hh"
#include "nn/gemm.hh"
#include "nn/loss.hh"
#include "nn/mlp.hh"
#include "nn/optimizer.hh"
#include "util/require.hh"
#include "util/rng.hh"

namespace {

using puffer::Rng;
namespace abr = puffer::abr;
namespace fugu = puffer::fugu;
namespace media = puffer::media;
namespace nn = puffer::nn;

constexpr size_t kTtpShape[] = {22, 64, 64, 21};

double seconds_since(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Run `body` repeatedly until ~target_s elapsed; returns iterations/second.
double time_loop(const double target_s, const std::function<void()>& body) {
  body();  // warm caches and scratch buffers before timing
  int64_t iterations = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 32; i++) {
      body();
    }
    iterations += 32;
    elapsed = seconds_since(start);
  } while (elapsed < target_s);
  return static_cast<double>(iterations) / elapsed;
}

nn::Matrix random_batch(Rng& rng, const size_t rows, const size_t cols) {
  nn::Matrix m{rows, cols};
  for (size_t i = 0; i < m.size(); i++) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

bool same_bits(const nn::Matrix& a, const nn::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// The seed's forward pass, verbatim, on the naive kernels (ping-pong
/// between two scratch matrices, separate bias and ReLU passes).
void naive_forward(const nn::Mlp& net, const nn::Matrix& input,
                   nn::Matrix& logits, nn::Matrix& scratch) {
  const nn::Matrix* src = &input;
  for (size_t l = 0; l < net.num_layers(); l++) {
    const size_t layers_after = net.num_layers() - 1 - l;
    nn::Matrix* dst = (layers_after % 2 == 0) ? &logits : &scratch;
    nn::naive_matmul(*src, net.weights()[l], *dst);
    nn::add_row_bias(*dst, net.biases()[l]);
    if (l + 1 < net.num_layers()) {
      for (size_t i = 0; i < dst->size(); i++) {
        dst->data()[i] = std::max(dst->data()[i], 0.0f);
      }
    }
    src = dst;
  }
}

/// One seed-style training step on the naive kernels (fresh tape and
/// gradient buffers per call, exactly like the pre-kernel-layer trainer).
double naive_train_step(nn::Mlp& net, const nn::Matrix& inputs,
                        const std::vector<int>& labels,
                        nn::AdamOptimizer& optimizer) {
  const nn::Mlp& cnet = net;
  std::vector<nn::Matrix> acts;
  acts.push_back(inputs);
  for (size_t l = 0; l < cnet.num_layers(); l++) {
    nn::Matrix next;
    nn::naive_matmul(acts.back(), cnet.weights()[l], next);
    nn::add_row_bias(next, cnet.biases()[l]);
    if (l + 1 < cnet.num_layers()) {
      for (size_t i = 0; i < next.size(); i++) {
        next.data()[i] = std::max(next.data()[i], 0.0f);
      }
    }
    acts.push_back(std::move(next));
  }
  nn::Matrix dlogits;
  const double loss =
      nn::softmax_cross_entropy(acts.back(), labels, dlogits);
  nn::Gradients grads = net.make_gradients();
  nn::Matrix delta = dlogits;
  nn::Matrix next_delta, dw;
  for (size_t l = cnet.num_layers(); l-- > 0;) {
    nn::naive_matmul_at(acts[l], delta, dw);
    grads.weights[l].add_inplace(dw);
    for (size_t r = 0; r < delta.rows(); r++) {
      const float* row = delta.data() + r * delta.cols();
      for (size_t c = 0; c < delta.cols(); c++) {
        grads.biases[l][c] += row[c];
      }
    }
    if (l == 0) {
      break;
    }
    nn::naive_matmul_bt(delta, cnet.weights()[l], next_delta);
    for (size_t i = 0; i < next_delta.size(); i++) {
      if (acts[l].data()[i] <= 0.0f) {
        next_delta.data()[i] = 0.0f;
      }
    }
    std::swap(delta, next_delta);
  }
  optimizer.step(net, grads);
  return loss;
}

double packed_train_step(nn::Mlp& net, const nn::Matrix& inputs,
                         const std::vector<int>& labels, nn::Tape& tape,
                         nn::Matrix& dlogits, nn::Gradients& grads,
                         nn::AdamOptimizer& optimizer) {
  net.forward_tape(inputs, tape);
  const double loss =
      nn::softmax_cross_entropy(tape.activations.back(), labels, dlogits);
  grads.zero();
  net.backward(tape, dlogits, grads);
  optimizer.step(net, grads);
  return loss;
}

bool same_dists(const std::vector<abr::TxTimeDistribution>& a,
                const std::vector<abr::TxTimeDistribution>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].size() != b[i].size()) {
      return false;
    }
    for (size_t j = 0; j < a[i].size(); j++) {
      if (std::memcmp(&a[i][j].time_s, &b[i][j].time_s, sizeof(double)) != 0 ||
          std::memcmp(&a[i][j].probability, &b[i][j].probability,
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

struct AuditResult {
  bool ok = true;
  void check(const bool passed, const char* what) {
    std::printf("  audit %-38s: %s\n", what, passed ? "ok" : "FAILED");
    ok = ok && passed;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_nn.json";
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: nn_kernels [--smoke] [--json PATH]\n");
      return 2;
    }
  }
  const double target_s = smoke ? 0.1 : 1.0;
  const size_t batch_rows = 256;

  const nn::Mlp net{{std::begin(kTtpShape), std::end(kTtpShape)}, 20190119};
  Rng rng{1};
  const nn::Matrix batch = random_batch(rng, batch_rows, net.input_size());
  const std::vector<float> one_row{batch.row(0).begin(), batch.row(0).end()};

  std::printf("== nn kernel layer (%s, %s) ==\n", puffer::nn::gemm_active_path().c_str(),
              smoke ? "smoke" : "full");

  // -------------------------------------------------------------------
  // Determinism audits (before timing; exit non-zero on any mismatch).
  // -------------------------------------------------------------------
  AuditResult audit;
  {
    nn::Matrix a, b, scratch;
    net.forward(batch, a, scratch);
    net.forward(batch, b, scratch);
    audit.check(same_bits(a, b), "repeated batched forward bitwise");

    nn::ForwardScratch one;
    bool rows_match = true;
    for (size_t r = 0; r < batch.rows(); r++) {
      const std::span<const float> logits = net.forward_one(
          std::span<const float>{batch.data() + r * batch.cols(),
                                 batch.cols()},
          one);
      rows_match = rows_match &&
                   std::memcmp(logits.data(), a.data() + r * a.cols(),
                               a.cols() * sizeof(float)) == 0;
    }
    audit.check(rows_match, "batched == single-row bitwise");

    if (nn::gemm_simd_available()) {
      nn::set_gemm_force_portable(true);
      nn::Matrix portable;
      net.forward(batch, portable, scratch);
      nn::set_gemm_force_portable(false);
      audit.check(same_bits(a, portable), "SIMD == portable bitwise");
    }
  }
  {
    std::vector<int> labels(batch_rows);
    for (size_t r = 0; r < batch_rows; r++) {
      labels[r] = static_cast<int>(r % net.output_size());
    }
    nn::Mlp net_a{{std::begin(kTtpShape), std::end(kTtpShape)}, 7};
    nn::Mlp net_b{{std::begin(kTtpShape), std::end(kTtpShape)}, 7};
    nn::AdamOptimizer opt_a{1e-3}, opt_b{1e-3};
    nn::Tape tape;
    nn::Matrix dlogits;
    nn::Gradients grads_a = net_a.make_gradients();
    nn::Gradients grads_b = net_b.make_gradients();
    for (int step = 0; step < 5; step++) {
      packed_train_step(net_a, batch, labels, tape, dlogits, grads_a, opt_a);
      packed_train_step(net_b, batch, labels, tape, dlogits, grads_b, opt_b);
    }
    audit.check(net_a == net_b, "training bitwise reproducible");
  }

  // -------------------------------------------------------------------
  // Single-row inference (the per-decision scalar path).
  // -------------------------------------------------------------------
  nn::ForwardScratch one_scratch;
  const double forward_one_rows = time_loop(target_s, [&] {
    (void)net.forward_one(one_row, one_scratch);
  });
  nn::Matrix naive_in{1, net.input_size()};
  std::copy(one_row.begin(), one_row.end(), naive_in.data());
  nn::Matrix naive_logits, naive_scratch;
  const double forward_one_naive_rows = time_loop(target_s, [&] {
    naive_forward(net, naive_in, naive_logits, naive_scratch);
  });

  // -------------------------------------------------------------------
  // Batched GEMM inference (fleet-coalesced decisions, evaluation sweeps).
  // -------------------------------------------------------------------
  nn::Matrix logits, scratch;
  const double forward_calls = time_loop(target_s, [&] {
    net.forward(batch, logits, scratch);
  });
  const double forward_naive_calls = time_loop(target_s, [&] {
    naive_forward(net, batch, naive_logits, naive_scratch);
  });
  const double forward_rows = forward_calls * static_cast<double>(batch_rows);
  const double forward_naive_rows =
      forward_naive_calls * static_cast<double>(batch_rows);

  // -------------------------------------------------------------------
  // Batched TTP prediction (one full MPC decision's queries per call).
  // -------------------------------------------------------------------
  const auto model =
      std::make_shared<fugu::TtpModel>(fugu::TtpConfig{}, 20190119);
  const int horizon = model->config().horizon;
  std::vector<abr::TxTimeQuery> queries;
  for (int step = 0; step < horizon; step++) {
    for (int rung = 0; rung < media::kNumRungs; rung++) {
      queries.push_back({step, rng.uniform_int(50'000, 6'000'000)});
    }
  }
  abr::AbrObservation obs;
  obs.tcp.cwnd_pkts = 80.0;
  obs.tcp.in_flight_pkts = 40.0;
  obs.tcp.min_rtt_s = 0.05;
  obs.tcp.srtt_s = 0.08;
  obs.tcp.delivery_rate_bps = 8e6;
  fugu::BatchTtpPredictor batched{model};
  fugu::TtpPredictor scalar{model};
  for (int i = 0; i < fugu::kTtpHistory; i++) {
    abr::ChunkRecord record;
    record.size_bytes = 500'000;
    record.transmission_time_s = 0.5;
    batched.on_chunk_complete(record);
    scalar.on_chunk_complete(record);
  }
  batched.begin_decision(obs);
  scalar.begin_decision(obs);
  std::vector<abr::TxTimeDistribution> out, expected;
  scalar.predict_batch(queries, expected);
  batched.predict_batch(queries, out);
  audit.check(same_dists(expected, out), "batched TTP == scalar TTP bitwise");

  const double query_rows = static_cast<double>(queries.size());
  const double ttp_batched_rows =
      time_loop(target_s, [&] { batched.predict_batch(queries, out); }) *
      query_rows;
  const double ttp_scalar_rows =
      time_loop(target_s, [&] { scalar.predict_batch(queries, out); }) *
      query_rows;

  // -------------------------------------------------------------------
  // Training step (nightly retrain inner loop), minibatch of 64.
  // -------------------------------------------------------------------
  const size_t train_rows = 64;
  const nn::Matrix train_batch = random_batch(rng, train_rows, net.input_size());
  std::vector<int> train_labels(train_rows);
  for (size_t r = 0; r < train_rows; r++) {
    train_labels[r] = static_cast<int>((r * 7) % net.output_size());
  }
  nn::Mlp train_net{{std::begin(kTtpShape), std::end(kTtpShape)}, 3};
  nn::AdamOptimizer train_opt{1e-3};
  nn::Tape train_tape;
  nn::Matrix train_dlogits;
  nn::Gradients train_grads = train_net.make_gradients();
  const double train_steps = time_loop(target_s, [&] {
    packed_train_step(train_net, train_batch, train_labels, train_tape,
                      train_dlogits, train_grads, train_opt);
  });
  nn::Mlp naive_net{{std::begin(kTtpShape), std::end(kTtpShape)}, 3};
  nn::AdamOptimizer naive_opt{1e-3};
  const double naive_train_steps = time_loop(target_s, [&] {
    naive_train_step(naive_net, train_batch, train_labels, naive_opt);
  });
  const double train_examples = train_steps * static_cast<double>(train_rows);
  const double naive_train_examples =
      naive_train_steps * static_cast<double>(train_rows);

  std::printf("\n  %-22s %14s %14s %9s\n", "path (rows/s)", "kernel layer",
              "naive ref", "speedup");
  const auto line = [](const char* name, const double fast,
                       const double naive) {
    std::printf("  %-22s %14.0f %14.0f %8.2fx\n", name, fast, naive,
                fast / naive);
  };
  line("forward_one", forward_one_rows, forward_one_naive_rows);
  line("forward (batch 256)", forward_rows, forward_naive_rows);
  line("batched TTP decision", ttp_batched_rows, ttp_scalar_rows);
  line("train step (batch 64)", train_examples, naive_train_examples);

  puffer::bench::JsonWriter json;
  json.field("bench", "nn_kernels");
  json.field("smoke", smoke);
  json.field("gemm_path", puffer::nn::gemm_active_path());
  json.field("forward_one_rows_per_s", forward_one_rows, 0);
  json.field("forward_one_naive_rows_per_s", forward_one_naive_rows, 0);
  json.field("forward_one_speedup", forward_one_rows / forward_one_naive_rows,
             3);
  json.field("forward_batch_rows_per_s", forward_rows, 0);
  json.field("forward_batch_naive_rows_per_s", forward_naive_rows, 0);
  json.field("forward_batch_speedup", forward_rows / forward_naive_rows, 3);
  json.field("ttp_batched_rows_per_s", ttp_batched_rows, 0);
  json.field("ttp_scalar_rows_per_s", ttp_scalar_rows, 0);
  json.field("ttp_batched_speedup", ttp_batched_rows / ttp_scalar_rows, 3);
  json.field("train_rows_per_s", train_examples, 0);
  json.field("train_naive_rows_per_s", naive_train_examples, 0);
  json.field("train_speedup", train_examples / naive_train_examples, 3);
  json.field("bitwise_deterministic", audit.ok);
  json.write_file(json_path);

  if (!audit.ok) {
    std::fprintf(stderr, "nn_kernels: BITWISE AUDIT FAILED\n");
    return 1;
  }
  return 0;
}
