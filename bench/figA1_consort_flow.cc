// Figure A1: CONSORT-style diagram of the experimental flow — sessions
// randomized, streams per arm, exclusions (never began playing, watch time
// under 4 s, slow video decoder), truncations, and considered streams.

#include "bench_common.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  int64_t sessions = 0, streams = 0, considered = 0;
  for (const auto& scheme : trial.schemes) {
    sessions += scheme.consort.sessions;
    streams += scheme.consort.streams;
    considered += scheme.consort.considered;
  }
  double watch_years = 0.0;
  for (const auto& scheme : trial.schemes) {
    watch_years += bench::total_watch_years(scheme);
  }

  std::printf("%lld sessions underwent randomization\n",
              static_cast<long long>(sessions));
  std::printf("%lld streams, %.2f client-years of considered data\n\n",
              static_cast<long long>(streams), watch_years);

  Table table{{"Arm", "Sessions", "Streams", "Never began", "< 4 s watch",
               "Slow decoder", "Truncated*", "Considered"}};
  for (const auto& scheme : trial.schemes) {
    const auto& c = scheme.consort;
    table.add_row({scheme.scheme, std::to_string(c.sessions),
                   std::to_string(c.streams), std::to_string(c.never_began),
                   std::to_string(c.under_min_watch),
                   std::to_string(c.decoder_failure),
                   std::to_string(c.truncated), std::to_string(c.considered)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("* truncated by loss of contact; still considered "
              "(as in the paper's diagram).\n\n");

  std::printf("Exclusion shares (paper, per arm: ~24%% never began, ~37%% "
              "under 4 s, ~0.01%% decoder):\n");
  int64_t never = 0, under = 0, decoder = 0;
  for (const auto& scheme : trial.schemes) {
    never += scheme.consort.never_began;
    under += scheme.consort.under_min_watch;
    decoder += scheme.consort.decoder_failure;
  }
  std::printf("  never began : %5.1f%%\n  under 4 s   : %5.1f%%\n"
              "  decoder     : %7.3f%%\n  considered  : %5.1f%%\n",
              100.0 * static_cast<double>(never) / static_cast<double>(streams),
              100.0 * static_cast<double>(under) / static_cast<double>(streams),
              100.0 * static_cast<double>(decoder) / static_cast<double>(streams),
              100.0 * static_cast<double>(considered) /
                  static_cast<double>(streams));

  // Sanity: buckets partition the streams.
  const bool partitions = never + under + decoder + considered == streams;
  return partitions ? 0 : 1;
}
