// Figure 1: "Results of primary experiment" — the headline table.
//
// Paper values (Jan 19 - Aug 7 & Aug 30 - Sept 12, 2019; 458,801 streams):
//   Algorithm      Time stalled  Mean SSIM  SSIM variation  Mean duration
//   Fugu           0.12%         16.9 dB    0.68 dB         32.6 min
//   MPC-HM         0.25%         16.8 dB    0.72 dB         27.9 min
//   BBA            0.19%         16.8 dB    1.03 dB         29.6 min
//   Pensieve       0.17%         16.5 dB    0.97 dB         28.5 min
//   RobustMPC-HM   0.10%         16.2 dB    0.90 dB         27.4 min
//
// Shape to reproduce: Fugu best-or-tied SSIM, lowest SSIM variation, longest
// mean duration; RobustMPC lowest stalls at a visible SSIM cost; MPC-HM the
// stall-heaviest of the classical MPC family.

#include "bench_common.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  Rng rng{1};
  Table table{{"Algorithm", "Time stalled", "Mean SSIM", "SSIM variation",
               "Mean duration", "Streams", "Watch-years"}};
  for (const auto& scheme : trial.schemes) {
    const stats::SchemeSummary summary =
        stats::summarize_scheme(scheme.considered, rng);
    double mean_duration_min = 0.0;
    for (const double d : scheme.session_durations_s) {
      mean_duration_min += d / 60.0;
    }
    mean_duration_min /=
        static_cast<double>(std::max<size_t>(1, scheme.session_durations_s.size()));

    table.add_row({scheme.scheme, format_percent(summary.stall_ratio.point, 2),
                   format_fixed(summary.ssim_mean_db, 1) + " dB",
                   format_fixed(summary.ssim_variation_db, 2) + " dB",
                   format_fixed(mean_duration_min, 1) + " min",
                   std::to_string(summary.num_streams),
                   format_fixed(bench::total_watch_years(scheme), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("(lower stall / variation better; higher SSIM / duration "
              "better. Uncertainties: see fig08_main_results and "
              "fig10_watch_ccdf.)\n");
  return 0;
}
