// Statistical-power analysis behind the paper's sections 1 and 3.4:
//   * "with 1.75 years of data per scheme, the width of the 95% CI on a
//     scheme's stall ratio is between +/-10% and +/-17% of the mean value";
//   * "even ... a year of accumulated experience per scheme, a 20%
//     improvement in rebuffering ratio would be statistically
//     indistinguishable";
//   * "it takes about 2 stream-years of data to reliably distinguish two ABR
//     schemes whose innate 'true' performance differs by 15%".
//
// We reproduce the analysis on simulated streams: bootstrap-CI width of the
// stall ratio as a function of accumulated watch time, and an A/B
// detectability sweep with a synthetic 15% injected effect.

#include <algorithm>

#include "bench_common.hh"
#include "stats/bootstrap.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  // Pool all considered streams (scheme-agnostic stall behaviour).
  std::vector<stats::RatioObservation> pool;
  for (const auto& scheme : trial.schemes) {
    for (const auto& figures : scheme.considered) {
      pool.push_back({figures.stall_time_s, figures.watch_time_s});
    }
  }
  Rng rng{12};
  std::shuffle(pool.begin(), pool.end(), rng.engine());

  const double year_s = 365.25 * 24 * 3600;
  double pool_years = 0.0;
  for (const auto& obs : pool) {
    pool_years += obs.denominator / year_s;
  }
  std::printf("Stream pool: %zu streams, %.2f stream-years total\n\n",
              pool.size(), pool_years);

  // 1. CI width vs data volume (resample the pool with replacement to build
  //    synthetic datasets of each target size).
  Table width_table{{"Stream-years", "Streams", "Stall ratio",
                     "95% CI half-width (% of mean)"}};
  std::vector<std::pair<double, double>> width_by_years;
  for (const double target_years : {0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 1.75}) {
    std::vector<stats::RatioObservation> sample;
    double acc = 0.0;
    while (acc < target_years * year_s) {
      const auto& obs = pool[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
      sample.push_back(obs);
      acc += obs.denominator;
    }
    const auto ci = stats::bootstrap_ratio_ci(sample, rng, 600);
    width_table.add_row(
        {format_fixed(target_years, 2), std::to_string(sample.size()),
         format_percent(ci.point, 3),
         format_fixed(100.0 * ci.relative_half_width(), 1) + "%"});
    width_by_years.emplace_back(target_years, ci.relative_half_width());
  }
  std::printf("%s\n", width_table.to_string().c_str());

  // 2. A/B detectability: inject a 15% stall-ratio improvement and measure
  //    how often non-overlapping CIs detect it at each data volume.
  std::printf("A/B detectability of a true 15%% stall-ratio difference\n");
  Table ab_table{{"Stream-years/arm", "Detected (of 20 experiments)"}};
  for (const double target_years : {0.01, 0.02, 0.05, 0.1, 0.25, 0.5}) {
    int detected = 0;
    const int experiments = 20;
    for (int e = 0; e < experiments; e++) {
      auto draw_arm = [&](const double stall_scale) {
        std::vector<stats::RatioObservation> arm;
        double acc = 0.0;
        while (acc < target_years * year_s) {
          auto obs = pool[static_cast<size_t>(
              rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
          obs.numerator *= stall_scale;
          arm.push_back(obs);
          acc += obs.denominator;
        }
        return arm;
      };
      const auto arm_a = draw_arm(1.0);
      const auto arm_b = draw_arm(0.85);  // 15% better
      const auto ci_a = stats::bootstrap_ratio_ci(arm_a, rng, 300);
      const auto ci_b = stats::bootstrap_ratio_ci(arm_b, rng, 300);
      if (!ci_a.overlaps(ci_b)) {
        detected++;
      }
    }
    ab_table.add_row({format_fixed(target_years, 2),
                      std::to_string(detected) + " / 20"});
  }
  std::printf("%s\n", ab_table.to_string().c_str());

  std::printf("Shape checks vs paper: CI half-width remains on the order of "
              "10%%+ of the mean\neven with years of data, and a 15%% effect "
              "needs stream-years per arm to detect\nreliably — uncertainty "
              "quantification is not optional in this domain.\n");

  // Qualitative claim (see EXPERIMENTS.md for the scale caveat: our
  // simulated stall process is less heavy-tailed than the live Internet's,
  // so every threshold sits at ~10x less data than the paper's): at the
  // smallest volumes a 15% effect is statistically invisible, and the CI
  // width decays slowly with data.
  for (const auto& [years, width] : width_by_years) {
    if (years <= 0.021 && width < 0.075) {
      return 1;
    }
  }
  return 0;
}
