// Figure 3: VBR encoding lets chunk size (3a) and picture quality (3b) vary
// within a stream. Prints per-chunk size and SSIM for the 200 kbps and
// 5500 kbps rungs of one channel, plus summary spreads.

#include <cstdio>

#include "media/channel.hh"
#include "media/ladder.hh"
#include "media/vbr_source.hh"
#include "util/running_stats.hh"

int main() {
  using namespace puffer;

  media::VbrVideoSource source{media::default_channels()[0], /*seed=*/31};
  const int low = 0;                      // 240p ~200 kbps
  const int high = media::kNumRungs - 1;  // 1080p ~5500 kbps
  const int chunks = 130;                 // as in the paper's figure

  std::printf("chunk   size200k(MB)  size5500k(MB)  ssim200k(dB)  ssim5500k(dB)\n");
  RunningStats low_size, high_size, low_ssim, high_ssim;
  for (int i = 0; i < chunks; i++) {
    const auto& menu = source.chunk_options(i);
    const double lo_mb = static_cast<double>(menu.version(low).size_bytes) / 1e6;
    const double hi_mb =
        static_cast<double>(menu.version(high).size_bytes) / 1e6;
    low_size.add(lo_mb);
    high_size.add(hi_mb);
    low_ssim.add(menu.version(low).ssim_db);
    high_ssim.add(menu.version(high).ssim_db);
    if (i % 4 == 0) {
      std::printf("%5d   %10.3f    %10.3f    %10.2f    %10.2f\n", i, lo_mb,
                  hi_mb, menu.version(low).ssim_db, menu.version(high).ssim_db);
    }
  }

  std::printf("\n(a) sizes: 5500 kbps rung spans %.2f-%.2f MB "
              "(mean %.2f); 200 kbps rung %.3f-%.3f MB\n",
              high_size.min(), high_size.max(), high_size.mean(),
              low_size.min(), low_size.max());
  std::printf("(b) quality: 5500 kbps rung spans %.1f-%.1f dB; "
              "200 kbps rung %.1f-%.1f dB\n",
              high_ssim.min(), high_ssim.max(), low_ssim.min(),
              low_ssim.max());
  std::printf("\nShape check vs paper: top-rung sizes vary several-fold and "
              "qualities by several dB within one stream; the two rungs' "
              "quality bands do not touch.\n");

  const bool size_varies = high_size.max() / high_size.min() > 2.0;
  const bool quality_varies = high_ssim.max() - high_ssim.min() > 1.5;
  const bool bands_separate = high_ssim.min() > low_ssim.max();
  return size_varies && quality_varies && bands_separate ? 0 : 1;
}
