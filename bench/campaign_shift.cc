// Scenario-shift workload: the deployment world changes mid-campaign (e.g.
// the viewer population moves from home broadband onto LTE) and the nightly
// in-situ loop must adapt from live telemetry alone — the core claim behind
// "learning in situ" generalizing beyond the world it launched in. A thin
// client of exp::Campaign with two phases and two arms (nightly-retrained
// Fugu vs static MPC-HM).
//
//   ./campaign_shift [familyA] [familyB] [days_per_phase]
//                    [--trace-out PATH] [--metrics-out PATH]
//
// Families accept ScenarioSpec::parse syntax, so "trace-replay:my.trace"
// works. Defaults: puffer cellular 3. --trace-out writes the completed days
// as virtual-time lanes (Chrome trace-event JSON) plus the perf plane's
// wall-clock lanes; --metrics-out dumps the campaign's sim-plane counters.
//
//   PUFFER_CAMPAIGN_DAYS     days per phase when argv[3] is absent
//   PUFFER_BENCH_SESSIONS    telemetry sessions per day (default 48)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exp/campaign.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "util/require.hh"
#include "util/table.hh"

int main(int argc, char** argv) {
  using namespace puffer;

  std::string trace_path, metrics_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      require(i + 1 < argc, "campaign_shift: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else {
      positional.push_back(arg);
    }
  }

  const net::ScenarioSpec before =
      net::ScenarioSpec::parse(!positional.empty() ? positional[0] : "puffer");
  const net::ScenarioSpec after = net::ScenarioSpec::parse(
      positional.size() > 1 ? positional[1] : "cellular");
  const char* days_env = std::getenv("PUFFER_CAMPAIGN_DAYS");
  const int env_days = days_env != nullptr ? std::atoi(days_env) : 0;
  const int per_phase = positional.size() > 2
                            ? std::max(1, std::atoi(positional[2].c_str()))
                            : (env_days > 0 ? env_days : 3);

  exp::CampaignArm fugu;
  fugu.name = "fugu-daily";
  fugu.scheme = "Fugu";
  fugu.retrain = true;
  fugu.train.epochs = 2;
  fugu.train.max_examples_per_step = 20000;
  exp::CampaignArm mpc;
  mpc.name = "mpc";
  mpc.scheme = "MPC-HM";

  exp::CampaignConfig config;
  config.arms = {fugu, mpc};
  config.phases = {exp::CampaignPhase{before, per_phase},
                   exp::CampaignPhase{after, per_phase}};
  config.telemetry_sessions_per_day = bench::sessions_per_scheme(48);
  config.eval_sessions_per_day =
      std::max(8, config.telemetry_sessions_per_day / 2);
  config.holdout_sessions_per_day =
      std::max(6, config.telemetry_sessions_per_day / 4);
  config.seed = 7;
  config.stream.max_stream_chunks = 1000;
  config.checkpoint_dir = exp::model_cache_dir() + "/campaign_shift_" +
                          std::to_string(config.fingerprint());

  std::printf("[setup] scenario shift %s -> %s after %d day(s), %d telemetry "
              "sessions/day (checkpointed in %s)\n\n",
              before.family.c_str(), after.family.c_str(), per_phase,
              config.telemetry_sessions_per_day,
              config.checkpoint_dir.c_str());

  exp::Campaign campaign{config};
  obs::prof_reset();  // scope the wall lanes to the campaign itself
  const exp::CampaignResult result = campaign.run();
  if (result.restored_days > 0) {
    std::printf("[resume] restored %d completed day(s) from the checkpoint\n\n",
                result.restored_days);
  }

  Table table{{"Day", "Scenario", "Fugu SSIM (dB)", "Fugu stall %",
               "TTP CE (nats)", "MPC SSIM (dB)"}};
  for (const exp::DayStats& day : result.days) {
    const exp::ArmDayStats& f = day.arms[0];
    table.add_row({std::to_string(day.day), day.scenario,
                   format_fixed(f.ssim_mean_db, 2),
                   format_percent(f.stall_ratio, 2),
                   format_fixed(f.cross_entropy, 3),
                   format_fixed(day.arms[1].ssim_mean_db, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The shift day streams the new world with a model trained entirely on the
  // old one; by the final day the window is full of new-world telemetry.
  const exp::ArmDayStats& shift_day =
      result.days[static_cast<size_t>(per_phase)].arms[0];
  const exp::ArmDayStats& final_day = result.days.back().arms[0];
  const bool holds = final_day.cross_entropy < shift_day.cross_entropy;
  std::printf("Shape check: nightly retraining adapts the TTP to the new "
              "scenario (CE %.3f on the shift day -> %.3f by day %d): %s\n",
              shift_day.cross_entropy, final_day.cross_entropy,
              result.days.back().day, holds ? "holds" : "VIOLATED");

  if (!trace_path.empty()) {
    obs::TraceWriter trace;
    campaign.export_trace(trace);  // virtual-time day lanes (deterministic)
    obs::prof_export_trace(trace);  // wall-clock lanes (perf plane)
    trace.write_file(trace_path);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                trace.event_count());
  }
  if (!metrics_path.empty()) {
    std::FILE* file = std::fopen(metrics_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", metrics_path.c_str());
    } else {
      const std::string body = campaign.metrics().to_json();
      std::fwrite(body.data(), 1, body.size(), file);
      std::fclose(file);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }
  return holds ? 0 : 1;
}
