// Scenario-shift workload: the deployment world changes mid-campaign (e.g.
// the viewer population moves from home broadband onto LTE) and the nightly
// in-situ loop must adapt from live telemetry alone — the core claim behind
// "learning in situ" generalizing beyond the world it launched in. A thin
// client of exp::Campaign with two phases and two arms (nightly-retrained
// Fugu vs static MPC-HM).
//
//   ./campaign_shift [familyA] [familyB] [days_per_phase]
//
// Families accept ScenarioSpec::parse syntax, so "trace-replay:my.trace"
// works. Defaults: puffer cellular 3.
//
//   PUFFER_CAMPAIGN_DAYS     days per phase when argv[3] is absent
//   PUFFER_BENCH_SESSIONS    telemetry sessions per day (default 48)

#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "exp/campaign.hh"
#include "util/table.hh"

int main(int argc, char** argv) {
  using namespace puffer;

  const net::ScenarioSpec before =
      net::ScenarioSpec::parse(argc > 1 ? argv[1] : "puffer");
  const net::ScenarioSpec after =
      net::ScenarioSpec::parse(argc > 2 ? argv[2] : "cellular");
  const char* days_env = std::getenv("PUFFER_CAMPAIGN_DAYS");
  const int env_days = days_env != nullptr ? std::atoi(days_env) : 0;
  const int per_phase = argc > 3 ? std::max(1, std::atoi(argv[3]))
                                 : (env_days > 0 ? env_days : 3);

  exp::CampaignArm fugu;
  fugu.name = "fugu-daily";
  fugu.scheme = "Fugu";
  fugu.retrain = true;
  fugu.train.epochs = 2;
  fugu.train.max_examples_per_step = 20000;
  exp::CampaignArm mpc;
  mpc.name = "mpc";
  mpc.scheme = "MPC-HM";

  exp::CampaignConfig config;
  config.arms = {fugu, mpc};
  config.phases = {exp::CampaignPhase{before, per_phase},
                   exp::CampaignPhase{after, per_phase}};
  config.telemetry_sessions_per_day = bench::sessions_per_scheme(48);
  config.eval_sessions_per_day =
      std::max(8, config.telemetry_sessions_per_day / 2);
  config.holdout_sessions_per_day =
      std::max(6, config.telemetry_sessions_per_day / 4);
  config.seed = 7;
  config.stream.max_stream_chunks = 1000;
  config.checkpoint_dir = exp::model_cache_dir() + "/campaign_shift_" +
                          std::to_string(config.fingerprint());

  std::printf("[setup] scenario shift %s -> %s after %d day(s), %d telemetry "
              "sessions/day (checkpointed in %s)\n\n",
              before.family.c_str(), after.family.c_str(), per_phase,
              config.telemetry_sessions_per_day,
              config.checkpoint_dir.c_str());

  exp::Campaign campaign{config};
  const exp::CampaignResult result = campaign.run();
  if (result.restored_days > 0) {
    std::printf("[resume] restored %d completed day(s) from the checkpoint\n\n",
                result.restored_days);
  }

  Table table{{"Day", "Scenario", "Fugu SSIM (dB)", "Fugu stall %",
               "TTP CE (nats)", "MPC SSIM (dB)"}};
  for (const exp::DayStats& day : result.days) {
    const exp::ArmDayStats& f = day.arms[0];
    table.add_row({std::to_string(day.day), day.scenario,
                   format_fixed(f.ssim_mean_db, 2),
                   format_percent(f.stall_ratio, 2),
                   format_fixed(f.cross_entropy, 3),
                   format_fixed(day.arms[1].ssim_mean_db, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The shift day streams the new world with a model trained entirely on the
  // old one; by the final day the window is full of new-world telemetry.
  const exp::ArmDayStats& shift_day =
      result.days[static_cast<size_t>(per_phase)].arms[0];
  const exp::ArmDayStats& final_day = result.days.back().arms[0];
  const bool holds = final_day.cross_entropy < shift_day.cross_entropy;
  std::printf("Shape check: nightly retraining adapts the TTP to the new "
              "scenario (CE %.3f on the shift day -> %.3f by day %d): %s\n",
              shift_day.cross_entropy, final_day.cross_entropy,
              result.days.back().day, holds ? "holds" : "VIOLATED");
  return holds ? 0 : 1;
}
