// Performance microbenchmarks (google-benchmark), backing the paper's
// section 4.5 engineering claims:
//   * "A forward pass of TTP's neural network in C++ imposes minimal
//     overhead per chunk (less than 0.3 ms ...)";
//   * the MPC controller's value iteration is cheap enough to replan on
//     every chunk;
// plus the simulator's own hot paths (TCP fluid step, chunk transfer, VBR
// generation, a TTP training batch, bootstrap resampling).

#include <benchmark/benchmark.h>

#include <memory>

#include "abr/mpc.hh"
#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "fugu/fugu.hh"
#include "fugu/ttp.hh"
#include "fugu/ttp_predictor.hh"
#include "media/channel.hh"
#include "media/vbr_source.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"
#include "stats/bootstrap.hh"

namespace {

using namespace puffer;

std::vector<media::ChunkOptions> bench_lookahead() {
  media::VbrVideoSource source{media::default_channels()[0], 5};
  std::vector<media::ChunkOptions> lookahead;
  for (int i = 0; i < 5; i++) {
    lookahead.push_back(source.chunk_options(i));
  }
  return lookahead;
}

/// One TTP forward pass (22 -> 64 -> 64 -> 21). Paper: < 0.3 ms per chunk.
void BM_TtpForwardSingle(benchmark::State& state) {
  const fugu::TtpModel model{fugu::TtpConfig{}, 1};
  fugu::TtpHistory history;
  for (int i = 0; i < 8; i++) {
    history.record(0.8, 0.4, 8);
  }
  net::TcpInfo tcp;
  tcp.delivery_rate_bps = 2e6;
  const auto features = model.featurize(history, tcp, 1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_bins(0, features));
  }
}
BENCHMARK(BM_TtpForwardSingle);

/// All predictor work of one Fugu decision: 5 horizon steps x 10 rungs.
void BM_TtpFullDecisionPredictions(benchmark::State& state) {
  const fugu::TtpModel model{fugu::TtpConfig{}, 1};
  fugu::TtpHistory history;
  for (int i = 0; i < 8; i++) {
    history.record(0.8, 0.4, 8);
  }
  net::TcpInfo tcp;
  tcp.delivery_rate_bps = 2e6;
  const auto lookahead = bench_lookahead();
  for (auto _ : state) {
    for (int step = 0; step < 5; step++) {
      for (int rung = 0; rung < media::kNumRungs; rung++) {
        benchmark::DoNotOptimize(model.predict_tx_time(
            step, history, tcp,
            lookahead[static_cast<size_t>(step)].version(rung).size_bytes));
      }
    }
  }
}
BENCHMARK(BM_TtpFullDecisionPredictions);

/// A complete MPC plan with a point-estimate predictor (MPC-HM's cost).
void BM_MpcPlanHarmonicMean(benchmark::State& state) {
  abr::StochasticMpc mpc;
  abr::HarmonicMeanPredictor predictor;
  abr::ChunkRecord record;
  record.size_bytes = 1'000'000;
  record.transmission_time_s = 0.8;
  for (int i = 0; i < 5; i++) {
    predictor.on_chunk_complete(record);
  }
  abr::AbrObservation obs;
  obs.buffer_s = 7.3;
  obs.prev_ssim_db = 15.0;
  const auto lookahead = bench_lookahead();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.plan(obs, lookahead, predictor));
  }
}
BENCHMARK(BM_MpcPlanHarmonicMean);

/// A complete Fugu decision: TTP predictions + stochastic value iteration.
void BM_FuguFullDecision(benchmark::State& state) {
  auto model = std::make_shared<const fugu::TtpModel>(fugu::TtpConfig{}, 1);
  const auto fugu_abr = fugu::make_fugu(model);
  abr::ChunkRecord record;
  record.size_bytes = 1'000'000;
  record.transmission_time_s = 0.8;
  for (int i = 0; i < 8; i++) {
    fugu_abr->on_chunk_complete(record);
  }
  abr::AbrObservation obs;
  obs.buffer_s = 7.3;
  obs.prev_ssim_db = 15.0;
  obs.tcp.delivery_rate_bps = 2e6;
  const auto lookahead = bench_lookahead();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fugu_abr->choose_rung(obs, lookahead));
  }
}
BENCHMARK(BM_FuguFullDecision);

/// One 1 MB chunk transfer over a 10 Mbit/s fluid TCP path.
void BM_TcpChunkTransfer(benchmark::State& state) {
  const double rate = 10.0 * 1e6 / 8.0;
  const net::NetworkPath path{
      net::ThroughputTrace{std::vector<double>(100000, rate), 1.0}, 0.040};
  net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                        net::TcpSender::default_queue_capacity(path)};
  sender.transfer(2e6);  // warm up
  for (auto _ : state) {
    benchmark::DoNotOptimize(sender.transfer(1e6));
  }
}
BENCHMARK(BM_TcpChunkTransfer);

/// Generating one chunk's ten encoded versions.
void BM_VbrChunkGeneration(benchmark::State& state) {
  media::VbrVideoSource source{media::default_channels()[0], 9};
  int64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.chunk_options(index++));
  }
}
BENCHMARK(BM_VbrChunkGeneration);

/// One TTP training step (batch 256, forward + backward + Adam).
void BM_TtpTrainBatch(benchmark::State& state) {
  fugu::TtpModel model{fugu::TtpConfig{}, 1};
  nn::Mlp& net = model.networks()[0];
  nn::AdamOptimizer optimizer{1e-3};
  Rng rng{3};
  nn::Matrix inputs{256, 22};
  for (size_t i = 0; i < inputs.size(); i++) {
    inputs.data()[i] = static_cast<float>(rng.uniform());
  }
  std::vector<int> labels(256);
  for (auto& label : labels) {
    label = static_cast<int>(rng.uniform_int(0, fugu::kTtpBins - 1));
  }
  for (auto _ : state) {
    nn::Tape tape;
    net.forward_tape(inputs, tape);
    nn::Matrix dlogits;
    benchmark::DoNotOptimize(
        nn::softmax_cross_entropy(tape.activations.back(), labels, dlogits));
    nn::Gradients grads = net.make_gradients();
    net.backward(tape, dlogits, grads);
    optimizer.step(net, grads);
  }
}
BENCHMARK(BM_TtpTrainBatch);

/// Bootstrap CI over 2,000 streams with 1,000 replicates (the per-scheme
/// analysis cost of the primary experiment).
void BM_BootstrapStallRatioCi(benchmark::State& state) {
  Rng data_rng{4};
  std::vector<stats::RatioObservation> streams;
  for (int i = 0; i < 2000; i++) {
    streams.push_back({data_rng.bernoulli(0.03) ? data_rng.exponential(0.5) : 0.0,
                       data_rng.lognormal(5.0, 1.3)});
  }
  Rng rng{5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::bootstrap_ratio_ci(streams, rng, 1000));
  }
}
BENCHMARK(BM_BootstrapStallRatioCi);

}  // namespace
