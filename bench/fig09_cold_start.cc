// Figure 9: cold start. Fugu bootstraps its first ABR decision from
// congestion-control statistics (RTT, delivery rate from the connection
// preamble), so it starts at higher quality for comparable startup delay;
// the classical predictors have no samples yet and default conservatively.

#include "bench_common.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  Table table{{"Scheme", "Startup delay (s)", "First-chunk SSIM (dB)"}};
  double fugu_first_ssim = 0.0;
  double best_other_first_ssim = 0.0;
  Rng rng{9};
  for (const auto& scheme : trial.schemes) {
    const stats::SchemeSummary summary =
        stats::summarize_scheme(scheme.considered, rng, /*replicates=*/100);
    table.add_row({scheme.scheme, format_fixed(summary.startup_delay_s, 2),
                   format_fixed(summary.first_chunk_ssim_db, 2)});
    if (scheme.scheme == "Fugu") {
      fugu_first_ssim = summary.first_chunk_ssim_db;
    } else {
      best_other_first_ssim =
          std::max(best_other_first_ssim, summary.first_chunk_ssim_db);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape check vs paper: Fugu's first-chunk SSIM is the highest "
              "(TCP-statistics bootstrap): %s\n",
              fugu_first_ssim >= best_other_first_ssim ? "holds" : "VIOLATED");
  return fugu_first_ssim >= best_other_first_ssim ? 0 : 1;
}
