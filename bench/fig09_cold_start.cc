// Figure 9: cold start. Fugu launched with an untrained model and improved
// over the first several days in deployment as the nightly in-situ loop
// (collect telemetry -> retrain with warm start -> redeploy) accumulated
// data. This bench is a thin client of exp::Campaign: one retraining Fugu
// arm against a static BBA baseline, one day at a time, with the campaign
// checkpoint making reruns resume instead of recompute.
//
//   PUFFER_CAMPAIGN_DAYS     days to simulate (default 5)
//   PUFFER_BENCH_SESSIONS    telemetry sessions per day (default 96)

#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "exp/campaign.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  // Default 5 days; a non-numeric override falls back to the default, and
  // an explicit 1 is raised to 2 (the shape check needs a before and after).
  const char* days_env = std::getenv("PUFFER_CAMPAIGN_DAYS");
  const int days_requested = days_env != nullptr ? std::atoi(days_env) : 5;
  const int days = days_requested > 0 ? std::max(2, days_requested) : 5;

  exp::CampaignArm fugu;
  fugu.name = "fugu-insitu";
  fugu.scheme = "Fugu";
  fugu.retrain = true;  // the paper's nightly warm-started retrain
  fugu.train.epochs = 2;
  fugu.train.max_examples_per_step = 20000;
  exp::CampaignArm bba;
  bba.name = "bba";
  bba.scheme = "BBA";

  exp::CampaignConfig config;
  config.arms = {fugu, bba};
  config.phases = {exp::CampaignPhase{net::ScenarioSpec{"puffer"}, days}};
  config.telemetry_sessions_per_day = bench::sessions_per_scheme(96);
  config.eval_sessions_per_day =
      std::max(8, config.telemetry_sessions_per_day / 2);
  config.holdout_sessions_per_day =
      std::max(6, config.telemetry_sessions_per_day / 6);
  config.seed = 20190126;  // Fugu's launch date (Figure 9)
  config.stream.max_stream_chunks = 1000;
  config.checkpoint_dir = exp::model_cache_dir() + "/campaign_fig09_" +
                          std::to_string(config.fingerprint());

  std::printf("[setup] cold-start campaign: %d days x %d telemetry sessions "
              "(checkpointed in %s)\n\n",
              days, config.telemetry_sessions_per_day,
              config.checkpoint_dir.c_str());

  exp::Campaign campaign{config};
  const exp::CampaignResult result = campaign.run();
  if (result.restored_days > 0) {
    std::printf("[resume] restored %d completed day(s) from the checkpoint\n\n",
                result.restored_days);
  }

  Table table{{"Day", "Fugu SSIM (dB)", "Fugu stall %", "TTP CE (nats)",
               "TTP top-1 %", "BBA SSIM (dB)"}};
  for (const exp::DayStats& day : result.days) {
    const exp::ArmDayStats& f = day.arms[0];
    const exp::ArmDayStats& b = day.arms[1];
    table.add_row({std::to_string(day.day), format_fixed(f.ssim_mean_db, 2),
                   format_percent(f.stall_ratio, 2),
                   format_fixed(f.cross_entropy, 3),
                   format_fixed(100.0 * f.top1_accuracy, 1),
                   format_fixed(b.ssim_mean_db, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Day 0 streams with random weights; the last day's model has seen every
  // prior day's telemetry. The paper's cold-start shape: prediction quality
  // (and with it QoE) improves over the first days.
  const double first_ce = result.days.front().arms[0].cross_entropy;
  const double last_ce = result.days.back().arms[0].cross_entropy;
  const bool holds = last_ce < first_ce;
  std::printf("Shape check vs paper: in-situ learning lowers held-out TTP "
              "cross-entropy over the first days (%.3f -> %.3f nats): %s\n",
              first_ce, last_ce, holds ? "holds" : "VIOLATED");
  std::printf("(uniform baseline over 21 bins would be ln 21 = 3.04 nats)\n");
  return holds ? 0 : 1;
}
