// Figure 7: ablation study of Fugu's Transmission Time Predictor. Removing
// each input/output/feature degrades its ability to predict transmission
// times. Variants (paper section 4.6):
//   * Full TTP            — everything on
//   * Point Estimate      — same network, max-likelihood output only
//   * Throughput Predictor— predicts throughput, ignores proposed chunk size
//   * Linear              — no hidden layers
//   * -tcp_info           — drops RTT/CWND/in-flight/delivery-rate inputs
//   * -history            — only 2 past chunks instead of 8
//
// Trains every variant on the same in-situ telemetry and evaluates on a
// held-out split.

#include <algorithm>

#include "bench_common.hh"
#include "exp/insitu.hh"
#include "fugu/ttp_trainer.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  std::printf("[setup] collecting in-situ telemetry (cached)...\n");
  fugu::TtpDataset dataset = exp::get_insitu_dataset();
  // Split by stream: 80% train / 20% held out.
  Rng split_rng{77};
  std::shuffle(dataset.begin(), dataset.end(), split_rng.engine());
  const size_t train_count = dataset.size() * 4 / 5;
  const fugu::TtpDataset train_set{dataset.begin(),
                                   dataset.begin() + static_cast<long>(train_count)};
  const fugu::TtpDataset test_set{dataset.begin() + static_cast<long>(train_count),
                                  dataset.end()};
  size_t train_chunks = 0;
  for (const auto& s : train_set) {
    train_chunks += s.chunks.size();
  }
  std::printf("[setup] %zu training streams (%zu chunks), %zu held-out "
              "streams\n\n", train_set.size(), train_chunks, test_set.size());

  fugu::TtpTrainConfig train_config;
  auto fit_and_eval = [&](fugu::TtpConfig config) {
    config.horizon = 1;  // the ablation evaluates step-0 prediction
    Rng rng{42};
    const fugu::TtpModel model =
        fugu::train_ttp(config, train_set, 0, train_config, rng);
    return fugu::evaluate_ttp(model, test_set);
  };

  fugu::TtpConfig full_config;
  const auto full = fit_and_eval(full_config);

  fugu::TtpConfig throughput_config;
  throughput_config.target = fugu::TtpTarget::kThroughput;
  const auto throughput = fit_and_eval(throughput_config);

  fugu::TtpConfig linear_config;
  linear_config.hidden_layers = {};
  const auto linear = fit_and_eval(linear_config);

  fugu::TtpConfig no_tcp_config;
  no_tcp_config.use_tcp_info = false;
  const auto no_tcp = fit_and_eval(no_tcp_config);

  fugu::TtpConfig short_history_config;
  short_history_config.history = 2;
  const auto short_history = fit_and_eval(short_history_config);

  Table table{{"Variant", "RMSE tx-time (s)", "Cross-entropy (nats)",
               "Top-1 bin acc"}};
  auto row = [&](const char* name, const double rmse,
                 const fugu::TtpEvaluation& eval) {
    table.add_row({name, format_fixed(rmse, 3),
                   format_fixed(eval.cross_entropy, 3),
                   format_percent(eval.top1_accuracy, 1)});
  };
  row("Full TTP (probabilistic)", full.rmse_expected_s, full);
  row("Point Estimate (max likelihood)", full.rmse_point_s, full);
  row("-tcp_info inputs", no_tcp.rmse_expected_s, no_tcp);
  row("-history (2 past chunks)", short_history.rmse_expected_s, short_history);
  row("Linear model (no hidden layers)", linear.rmse_expected_s, linear);
  row("Throughput Predictor (no size input)", throughput.rmse_expected_s,
      throughput);
  std::printf("%s\n", table.to_string().c_str());

  const bool prob_beats_point = full.rmse_expected_s <= full.rmse_point_s;
  const bool full_beats_linear = full.cross_entropy < linear.cross_entropy;
  const bool full_beats_throughput =
      full.rmse_expected_s < throughput.rmse_expected_s;
  const bool full_beats_no_tcp = full.cross_entropy < no_tcp.cross_entropy;
  std::printf("Shape checks vs paper (each ablation hurts):\n"
              "  probabilistic <= point estimate (RMSE):    %s\n"
              "  full beats linear (cross-entropy):         %s\n"
              "  full beats throughput-predictor (RMSE):    %s\n"
              "  full beats -tcp_info (cross-entropy):      %s\n",
              prob_beats_point ? "holds" : "VIOLATED",
              full_beats_linear ? "holds" : "VIOLATED",
              full_beats_throughput ? "holds" : "VIOLATED",
              full_beats_no_tcp ? "holds" : "VIOLATED");
  return prob_beats_point && full_beats_linear && full_beats_throughput
             ? 0
             : 1;
}
