// Figure 5: distinguishing features of the algorithms used in the
// experiments (control strategy, predictor, optimization goal, training).
// Rendered from the scheme registry so it cannot drift from the code.

#include <cstdio>

#include "exp/registry.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  Table table{{"Algorithm", "Control", "Predictor", "Optimization goal",
               "How trained"}};
  for (const auto& info : exp::scheme_table()) {
    table.add_row(
        {info.name, info.control, info.predictor, info.objective, info.training});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("HM = harmonic mean of last five throughput samples. "
              "MPC = model-predictive control. DNN = deep neural network.\n");
  return 0;
}
