#ifndef PUFFER_BENCH_BENCH_COMMON_HH
#define PUFFER_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "exp/models.hh"
#include "exp/trial_cache.hh"
#include "obs/metrics.hh"
#include "stats/summary.hh"

namespace puffer::bench {

/// JSON string-body escaping per RFC 8259: backslash, double quote, and
/// every control character below 0x20 (named escapes where they exist,
/// \u00XX otherwise). Keeps bench JSON parseable when a path, trace name
/// or scenario id carries quotes, Windows separators or stray control
/// bytes.
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Standardized emitter for the BENCH_*.json artifacts the benches commit:
/// a flat ordered JSON object of numbers, strings and bools. Keeps every
/// bench's output diff-friendly (fixed decimals, insertion order) without
/// each main() hand-rolling fprintf format strings. Keys and string values
/// are escaped, so arbitrary paths/names stay valid JSON.
class JsonWriter {
 public:
  void field(const std::string& key, const std::string& value) {
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted += '"';
    quoted += json_escape(value);
    quoted += '"';
    fields_.emplace_back(key, std::move(quoted));
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string{value});
  }
  void field(const std::string& key, const bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void field(const std::string& key, const int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void field(const std::string& key, const int value) {
    field(key, static_cast<int64_t>(value));
  }
  /// Fixed-point with `decimals` digits (0 emits an integer-looking value).
  /// NaN and infinities (degenerate bench runs: zero-duration timers,
  /// empty series) have no JSON representation — they serialize as null
  /// rather than the bare `nan`/`inf` token snprintf would produce, which
  /// no JSON parser accepts.
  void field(const std::string& key, const double value,
             const int decimals = 3) {
    fields_.emplace_back(key, double_token(value, decimals));
  }
  /// Ordered JSON array of fixed-point numbers (the concurrency-curve
  /// fields); non-finite entries become null like the scalar overload.
  void field(const std::string& key, const std::vector<double>& values,
             const int decimals = 3) {
    std::string body = "[";
    for (size_t i = 0; i < values.size(); i++) {
      body += double_token(values[i], decimals);
      if (i + 1 < values.size()) {
        body += ", ";
      }
    }
    body += "]";
    fields_.emplace_back(key, std::move(body));
  }
  /// Ordered JSON array of integers.
  void field(const std::string& key, const std::vector<int64_t>& values) {
    std::string body = "[";
    for (size_t i = 0; i < values.size(); i++) {
      body += std::to_string(values[i]);
      if (i + 1 < values.size()) {
        body += ", ";
      }
    }
    body += "]";
    fields_.emplace_back(key, std::move(body));
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); i++) {
      out += "  \"";
      out += json_escape(fields_[i].first);
      out += "\": ";
      out += fields_[i].second;
      out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  /// Write to `path`; returns false (after a warning) when the file cannot
  /// be opened, matching the benches' best-effort JSON behavior.
  bool write_file(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = str();
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string double_token(const double value, const int decimals) {
    if (!std::isfinite(value)) {
      return "null";
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Flatten a sim-plane metrics snapshot into `<prefix><name>` fields:
/// counters and gauges emit their value (gauges additionally their
/// high-water as `.peak`), histograms their observation count and bucket
/// array. Field order is the snapshot's registration order, so the JSON
/// stays diff-friendly across runs.
inline void metrics_fields(JsonWriter& json,
                           const obs::MetricSnapshot& snapshot,
                           const std::string& prefix = "metrics.") {
  for (const auto& metric : snapshot.metrics) {
    const std::string key = prefix + metric.name;
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
        json.field(key, metric.value);
        break;
      case obs::MetricKind::kGauge:
        json.field(key, metric.value);
        json.field(key + ".peak", metric.high_water);
        break;
      case obs::MetricKind::kHistogram:
        json.field(key + ".count", metric.count);
        json.field(key + ".buckets", metric.buckets);
        break;
    }
  }
}

/// Sessions per scheme for the trial-based benches. Override with
/// PUFFER_BENCH_SESSIONS; the default gives stable orderings in minutes of
/// compute. (The real study ran ~48,000 sessions per scheme over 7 months.)
inline int sessions_per_scheme(const int fallback = 400) {
  const char* env = std::getenv("PUFFER_BENCH_SESSIONS");
  if (env != nullptr) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

/// The shared primary experiment: five schemes, deployment-like paths,
/// blinded random assignment. Cached on disk so the Figure 1/4/8/9/10/A1
/// benches all analyze one simulation run.
inline exp::TrialResult primary_trial() {
  exp::TrialConfig config;
  config.schemes = {"Fugu", "MPC-HM", "RobustMPC-HM", "Pensieve", "BBA"};
  config.sessions_per_scheme = sessions_per_scheme();
  config.seed = 20190119;  // the trial's start date, section 5
  std::printf("[setup] primary experiment: %zu schemes x %d sessions "
              "(cached after first run)\n\n",
              config.schemes.size(), config.sessions_per_scheme);
  return exp::run_trial_cached(config, exp::default_artifacts(), "primary");
}

inline double total_watch_years(const exp::SchemeResult& scheme) {
  double total = 0.0;
  for (const auto& figures : scheme.considered) {
    total += figures.watch_time_s;
  }
  return total / (365.25 * 24 * 3600);
}

}  // namespace puffer::bench

#endif  // PUFFER_BENCH_BENCH_COMMON_HH
