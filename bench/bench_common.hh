#ifndef PUFFER_BENCH_BENCH_COMMON_HH
#define PUFFER_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/models.hh"
#include "exp/trial_cache.hh"
#include "stats/summary.hh"

namespace puffer::bench {

/// Sessions per scheme for the trial-based benches. Override with
/// PUFFER_BENCH_SESSIONS; the default gives stable orderings in minutes of
/// compute. (The real study ran ~48,000 sessions per scheme over 7 months.)
inline int sessions_per_scheme(const int fallback = 400) {
  const char* env = std::getenv("PUFFER_BENCH_SESSIONS");
  if (env != nullptr) {
    return std::max(1, std::atoi(env));
  }
  return fallback;
}

/// The shared primary experiment: five schemes, deployment-like paths,
/// blinded random assignment. Cached on disk so the Figure 1/4/8/9/10/A1
/// benches all analyze one simulation run.
inline exp::TrialResult primary_trial() {
  exp::TrialConfig config;
  config.schemes = {"Fugu", "MPC-HM", "RobustMPC-HM", "Pensieve", "BBA"};
  config.sessions_per_scheme = sessions_per_scheme();
  config.seed = 20190119;  // the trial's start date, section 5
  std::printf("[setup] primary experiment: %zu schemes x %d sessions "
              "(cached after first run)\n\n",
              config.schemes.size(), config.sessions_per_scheme);
  return exp::run_trial_cached(config, exp::default_artifacts(), "primary");
}

inline double total_watch_years(const exp::SchemeResult& scheme) {
  double total = 0.0;
  for (const auto& figures : scheme.considered) {
    total += figures.watch_time_s;
  }
  return total / (365.25 * 24 * 3600);
}

}  // namespace puffer::bench

#endif  // PUFFER_BENCH_BENCH_COMMON_HH
