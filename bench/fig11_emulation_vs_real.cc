// Figure 11: emulation vs the real world.
//   Left:   all schemes evaluated in the mahimahi/FCC-style emulator
//           (paired paths — emulators can replay identical conditions).
//   Middle: the same schemes plus "Emulation-trained Fugu" in the
//           deployment-like world. Training on emulation traces does not
//           generalize: emulation-trained Fugu's stall ratio collapses.
//   Right:  the throughput distributions of the two worlds.

#include "bench_common.hh"
#include "stats/ccdf.hh"
#include "util/table.hh"

namespace {

void print_results(const char* title, const puffer::exp::TrialResult& trial) {
  using namespace puffer;
  std::printf("%s\n", title);
  Table table{{"Scheme", "Stall ratio [95% CI]", "SSIM (dB)", "Streams"}};
  Rng rng{11};
  for (const auto& scheme : trial.schemes) {
    if (scheme.considered.empty()) {
      continue;
    }
    const stats::SchemeSummary summary =
        stats::summarize_scheme(scheme.considered, rng, 400);
    table.add_row({scheme.scheme,
                   format_percent(summary.stall_ratio.point, 3) + "  [" +
                       format_percent(summary.stall_ratio.lower, 3) + ", " +
                       format_percent(summary.stall_ratio.upper, 3) + "]",
                   format_fixed(summary.ssim_mean_db, 2),
                   std::to_string(summary.num_streams)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

double stall_ratio_of(const puffer::exp::TrialResult& trial,
                      const std::string& scheme_name) {
  double stall = 0.0, watch = 0.0;
  for (const auto& figures : trial.result_for(scheme_name).considered) {
    stall += figures.stall_time_s;
    watch += figures.watch_time_s;
  }
  return watch > 0.0 ? stall / watch : 0.0;
}

}  // namespace

int main() {
  using namespace puffer;

  const exp::SchemeArtifacts artifacts = exp::default_artifacts();
  const std::vector<std::string> schemes = {"Fugu",     "MPC-HM",
                                            "RobustMPC-HM", "Pensieve",
                                            "BBA",      "Emulation-trained Fugu"};

  // Left panel: the emulator.
  exp::TrialConfig emulation;
  emulation.schemes = schemes;
  emulation.scenario.family = "fcc-emulation";
  emulation.paired_paths = true;  // emulators can replay exact conditions
  emulation.sessions_per_scheme = bench::sessions_per_scheme(120);
  emulation.seed = 1111;
  const exp::TrialResult emu_trial =
      exp::run_trial_cached(emulation, artifacts, "fig11_emulation");

  // Middle panel: the deployment-like world (true randomized assignment).
  exp::TrialConfig real;
  real.schemes = schemes;
  real.scenario.family = "puffer";
  real.sessions_per_scheme = bench::sessions_per_scheme(200);
  real.seed = 2222;
  const exp::TrialResult real_trial =
      exp::run_trial_cached(real, artifacts, "fig11_real");

  print_results("=== Left: emulation (FCC traces, paired replay) ===",
                emu_trial);
  print_results("=== Middle: deployment-like experiment ===", real_trial);

  // Right panel: throughput distributions experienced by the streams.
  std::printf("=== Right: throughput distribution (mean delivery rate of "
              "considered streams) ===\n");
  auto rates_of = [](const exp::TrialResult& trial) {
    std::vector<double> rates;
    for (const auto& scheme : trial.schemes) {
      for (const auto& figures : scheme.considered) {
        if (figures.mean_delivery_rate_mbps > 0.0) {
          rates.push_back(figures.mean_delivery_rate_mbps);
        }
      }
    }
    return rates;
  };
  const auto emu_rates = rates_of(emu_trial);
  const auto real_rates = rates_of(real_trial);
  std::printf("%-12s %-18s %-18s\n", "percentile", "FCC emulation",
              "Puffer-like paths");
  for (const double q : {0.05, 0.25, 0.50, 0.75, 0.95, 0.99}) {
    std::printf("%-12.2f %-18.2f %-18.2f\n", q,
                stats::quantile(emu_rates, q), stats::quantile(real_rates, q));
  }

  // Shape checks.
  const double emu_fugu = stall_ratio_of(emu_trial, "Emulation-trained Fugu");
  const double emu_insitu = stall_ratio_of(emu_trial, "Fugu");
  const double real_emu_fugu =
      stall_ratio_of(real_trial, "Emulation-trained Fugu");
  const double real_insitu = stall_ratio_of(real_trial, "Fugu");
  std::printf("\nEmulation-trained Fugu stall ratio: %.4f%% in its own "
              "training world vs %.4f%% deployed (in-situ Fugu deployed: "
              "%.4f%%).\n",
              100.0 * emu_fugu, 100.0 * real_emu_fugu, 100.0 * real_insitu);

  // The throughput distributions must differ grossly (the paper's right
  // panel) — that part of the figure reproduces by construction.
  const bool distributions_differ =
      stats::quantile(real_rates, 0.75) > 3.0 * stats::quantile(emu_rates, 0.75);
  std::printf("Shape check: deployment throughput distribution dominates the "
              "emulation one: %s\n",
              distributions_differ ? "holds" : "VIOLATED");

  // Honest reproduction boundary (see EXPERIMENTS.md): the paper's
  // emulation-trained Fugu collapsed in deployment. In this repository both
  // "worlds" run on the same simulator substrate and differ only in trace
  // statistics, so the emulation-trained TTP lands *conservative* rather
  // than catastrophic — evidence for the paper's deeper point that it is
  // the emulator-to-reality gap, not trace statistics alone, that breaks
  // learned components.
  std::printf("Partial reproduction note: emulation-trained Fugu deployed at "
              "%.3f%% stalls vs %.3f%% in situ — degraded-or-equal rather "
              "than the paper's collapse; see EXPERIMENTS.md.\n",
              100.0 * real_emu_fugu, 100.0 * real_insitu);
  (void)emu_insitu;
  return distributions_differ ? 0 : 1;
}
