// Figure 10: CCDF of total time on the video player per session, by scheme,
// with bootstrap means. The paper: Fugu sessions lasted 10-20% longer on
// average, driven solely by the upper tail (> 2.5 h); the distributions are
// nearly identical until then.

#include <cmath>

#include "bench_common.hh"
#include "stats/bootstrap.hh"
#include "stats/ccdf.hh"
#include "util/table.hh"

int main() {
  using namespace puffer;

  const exp::TrialResult trial = bench::primary_trial();

  // Means with bootstrap CIs (paper quotes e.g. "32.6 +/- 1.1 min").
  Rng rng{10};
  Table means{{"Scheme", "Mean duration (min) [95% CI]", "Sessions",
               "P(> 2.5 h)"}};
  double fugu_mean = 0.0, best_other = 0.0;
  for (const auto& scheme : trial.schemes) {
    std::vector<double> minutes;
    int long_sessions = 0;
    for (const double s : scheme.session_durations_s) {
      minutes.push_back(s / 60.0);
      if (s > 2.5 * 3600.0) {
        long_sessions++;
      }
    }
    const auto ci = stats::bootstrap_mean_ci(minutes, rng, 500);
    means.add_row({scheme.scheme,
                   format_fixed(ci.point, 1) + "  [" +
                       format_fixed(ci.lower, 1) + ", " +
                       format_fixed(ci.upper, 1) + "]",
                   std::to_string(minutes.size()),
                   format_percent(static_cast<double>(long_sessions) /
                                      static_cast<double>(minutes.size()), 2)});
    if (scheme.scheme == "Fugu") {
      fugu_mean = ci.point;
    } else {
      best_other = std::max(best_other, ci.point);
    }
  }
  std::printf("%s\n", means.to_string().c_str());

  // CCDF curves at fixed probe durations.
  std::printf("CCDF P(session duration > t):\n");
  std::printf("%-14s", "t (min)");
  for (const auto& scheme : trial.schemes) {
    std::printf("%-16s", scheme.scheme.c_str());
  }
  std::printf("\n");
  for (const double minutes : {1.0, 5.0, 15.0, 30.0, 60.0, 150.0, 300.0, 600.0}) {
    std::printf("%-14.0f", minutes);
    for (const auto& scheme : trial.schemes) {
      int over = 0;
      for (const double s : scheme.session_durations_s) {
        if (s > minutes * 60.0) {
          over++;
        }
      }
      std::printf("%-16.4f",
                  static_cast<double>(over) /
                      static_cast<double>(scheme.session_durations_s.size()));
    }
    std::printf("\n");
  }

  std::printf("\nShape check vs paper: Fugu's mean time-on-site is the "
              "longest: %s (Fugu %.1f min vs best other %.1f min)\n",
              fugu_mean >= best_other ? "holds" : "VIOLATED", fugu_mean,
              best_other);
  return 0;
}
