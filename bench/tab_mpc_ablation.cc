// Ablation of the MPC controller's design constants (paper sections 4.4 and
// 4.5): lookahead horizon H = 5 chunks and a discretized buffer. Sweeps the
// horizon and the buffer-bin width for MPC-HM over a fixed set of paths and
// reports QoE figures plus mean per-decision planning time.

#include <chrono>
#include <memory>

#include "abr/mpc_abr.hh"
#include "abr/throughput_predictors.hh"
#include "bench_common.hh"
#include "media/channel.hh"
#include "net/bbr.hh"
#include "net/tcp_sender.hh"
#include "sim/session.hh"
#include "util/table.hh"

namespace {

using namespace puffer;

struct AblationResult {
  stats::SchemeSummary summary;
  double mean_plan_us = 0.0;
};

/// Wraps an ABR scheme to time its decisions.
class TimedAbr final : public abr::AbrAlgorithm {
 public:
  explicit TimedAbr(std::unique_ptr<abr::AbrAlgorithm> inner)
      : inner_(std::move(inner)) {}
  [[nodiscard]] std::string_view name() const override {
    return inner_->name();
  }
  void reset_session() override { inner_->reset_session(); }
  int choose_rung(const abr::AbrObservation& obs,
                  std::span<const media::ChunkOptions> lookahead) override {
    const auto start = std::chrono::steady_clock::now();
    const int rung = inner_->choose_rung(obs, lookahead);
    const auto end = std::chrono::steady_clock::now();
    total_us_ += std::chrono::duration<double, std::micro>(end - start).count();
    decisions_++;
    return rung;
  }
  void on_chunk_complete(const abr::ChunkRecord& record) override {
    inner_->on_chunk_complete(record);
  }
  [[nodiscard]] double mean_us() const {
    return decisions_ > 0 ? total_us_ / decisions_ : 0.0;
  }

 private:
  std::unique_ptr<abr::AbrAlgorithm> inner_;
  double total_us_ = 0.0;
  int64_t decisions_ = 0;
};

AblationResult evaluate(const abr::MpcConfig& config, const int num_streams) {
  const net::PufferPathModel paths;
  TimedAbr abr{std::make_unique<abr::MpcAbr>(
      "MPC-HM", std::make_unique<abr::HarmonicMeanPredictor>(), config)};

  std::vector<stats::StreamFigures> figures;
  Rng rng{606};
  sim::StreamRunConfig stream_config;
  stream_config.lookahead_chunks = std::max(config.horizon, 1);
  for (int s = 0; s < num_streams; s++) {
    Rng stream_rng = rng.split(static_cast<uint64_t>(s));
    const net::NetworkPath path = paths.sample_path(stream_rng, 900.0);
    net::TcpSender sender{path, std::make_unique<net::BbrModel>(),
                          net::TcpSender::default_queue_capacity(path)};
    sim::send_preamble(sender);
    abr.reset_session();
    media::VbrVideoSource video{
        media::default_channels()[static_cast<size_t>(s) % media::kNumChannels],
        static_cast<uint64_t>(s) * 13 + 1};
    sim::UserBehavior viewer;
    viewer.watch_intent_s = 420.0;
    viewer.stall_patience_s = 1e9;
    viewer.stall_hazard_per_s = 0.0;
    viewer.quality_hazard_per_s_db = 0.0;
    const sim::StreamOutcome outcome =
        sim::run_stream(sender, abr, video, 0, viewer, stream_rng,
                        stream_config);
    if (outcome.began_playing) {
      figures.push_back(outcome.figures);
    }
  }
  Rng summary_rng{2};
  return {stats::summarize_scheme(figures, summary_rng, 300), abr.mean_us()};
}

}  // namespace

int main() {
  const int streams = puffer::bench::sessions_per_scheme(80);

  puffer::Table table{{"Config", "Stall ratio", "SSIM (dB)", "SSIM var (dB)",
                       "Plan time (us)"}};
  auto add = [&](const std::string& label, const abr::MpcConfig& config) {
    const AblationResult result = evaluate(config, streams);
    table.add_row({label,
                   puffer::format_percent(result.summary.stall_ratio.point, 3),
                   puffer::format_fixed(result.summary.ssim_mean_db, 2),
                   puffer::format_fixed(result.summary.ssim_variation_db, 2),
                   puffer::format_fixed(result.mean_plan_us, 1)});
    return result;
  };

  abr::MpcConfig base;  // H = 5, 0.25 s bins — the paper's configuration
  add("H=5, bin=0.25s (paper)", base);

  for (const int horizon : {1, 3, 8}) {
    abr::MpcConfig config = base;
    config.horizon = horizon;
    add("H=" + std::to_string(horizon) + ", bin=0.25s", config);
  }
  for (const double bin : {0.1, 1.0}) {
    abr::MpcConfig config = base;
    config.buffer_bin_s = bin;
    add("H=5, bin=" + puffer::format_fixed(bin, 2) + "s", config);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expected shape: H=1 is myopic (worse smoothness/stalls); "
              "returns diminish beyond H=5;\ncoarser buffer bins are cheaper "
              "but blur the stall boundary.\n");
  return 0;
}
