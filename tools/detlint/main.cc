/// detlint CLI — walks the given paths (repo-relative), lints every C++
/// source, prints findings, and exits nonzero when any are unsuppressed.
///
/// Usage:
///   detlint [--root DIR] [--config FILE] [--exclude PREFIX]... [-v] PATH...
///
/// PATHs are files or directories relative to --root (default: cwd).
/// Registered in CTest as the `detlint` suite over src/ bench/ tests/
/// examples/ tools/, so the tree stays clean by construction.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "detlint/detlint.hh"

namespace {

namespace fs = std::filesystem;

bool has_cpp_extension(const fs::path& path) {
  static const std::set<std::string> kExtensions = {".cc", ".hh", ".cpp",
                                                    ".hpp", ".h", ".cxx"};
  return kExtensions.count(path.extension().string()) > 0;
}

std::string read_file(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// `path` rendered repo-relative with forward slashes.
std::string relative_label(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string config_path;
  std::vector<std::string> excludes;
  std::vector<std::string> inputs;
  bool verbose = false;

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "detlint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next_value("--root");
    } else if (arg == "--config") {
      config_path = next_value("--config");
    } else if (arg == "--exclude") {
      excludes.push_back(next_value("--exclude"));
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: detlint [--root DIR] [--config FILE] [--exclude PREFIX]... "
          "[-v] PATH...\n"
          "Determinism lint: rules R1-R6 over C++ sources. Exit 1 on any\n"
          "unsuppressed finding. See tools/detlint/detlint.hh for the rules\n"
          "and the DETLINT-OK suppression syntax.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "detlint: no paths given (try --help)\n");
    return 2;
  }

  detlint::Config config;
  if (!config_path.empty()) {
    try {
      config = detlint::parse_config(read_file(config_path));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "detlint: %s\n", error.what());
      return 2;
    }
  }

  // Gather files: directories recurse, deterministic sorted order.
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    const fs::path path = root / input;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "detlint: no such path: %s\n",
                   path.string().c_str());
      return 2;
    }
  }
  std::vector<std::pair<std::string, fs::path>> labeled;
  labeled.reserve(files.size());
  for (const fs::path& file : files) {
    const std::string label = relative_label(root, file);
    const bool excluded = [&] {
      for (const std::string& prefix : excludes) {
        if (label.rfind(prefix, 0) == 0) {
          return true;
        }
      }
      return false;
    }();
    if (!excluded) {
      labeled.emplace_back(label, file);
    }
  }
  std::sort(labeled.begin(), labeled.end());

  int total_findings = 0;
  int total_suppressed = 0;
  int total_allowlisted = 0;
  for (const auto& [label, file] : labeled) {
    std::string content;
    try {
      content = read_file(file);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "detlint: %s\n", error.what());
      return 2;
    }
    const detlint::FileReport report =
        detlint::lint_file(label, content, config);
    for (const detlint::Finding& finding : report.findings) {
      std::printf("%s\n", finding.str().c_str());
    }
    if (verbose) {
      for (const detlint::Finding& finding : report.suppressed) {
        std::printf("suppressed: %s\n", finding.str().c_str());
      }
    }
    total_findings += static_cast<int>(report.findings.size());
    total_suppressed += static_cast<int>(report.suppressed.size());
    total_allowlisted += report.allowlisted;
  }

  std::printf(
      "detlint: %zu files, %d finding%s (%d suppressed, %d allowlisted)\n",
      labeled.size(), total_findings, total_findings == 1 ? "" : "s",
      total_suppressed, total_allowlisted);
  return total_findings == 0 ? 0 : 1;
}
