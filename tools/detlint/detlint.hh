#ifndef PUFFER_TOOLS_DETLINT_HH
#define PUFFER_TOOLS_DETLINT_HH

#include <string>
#include <string_view>
#include <vector>

/// detlint — determinism lint for the puffer reproduction.
///
/// Every result this repo produces rests on a bitwise-determinism contract
/// (batched==scalar, fleet==sequential, N-thread==1-thread). detlint is a
/// standalone static-analysis pass (own scanner, no libclang) that enforces
/// the source-level half of that contract as machine-checked policy:
///
///   R1 nondet-source     no nondeterministic sources (rand, random_device,
///                        time(), *_clock::now, getenv, ...) outside
///                        src/util/rng.* and allowlisted I/O/timing files
///   R2 ordered-sink      no iteration over std::unordered_{map,set}
///                        (hash-order is result-affecting); suppress with
///                        a reason where order provably cannot escape
///   R3 pointer-key       no std::map/std::set (or unordered) keyed on raw
///                        pointers — address order differs run to run
///   R4 fp-reduce         no floating-point reductions via std::accumulate/
///                        std::reduce outside the src/nn/ kernel layer
///                        (fixed-order loops only)
///   R5 global-state      no mutable namespace-scope state outside
///                        annotated singletons
///   R6 unannotated-sync  every std::mutex / std::atomic class member must
///                        carry a thread-safety annotation
///                        (GUARDED_BY / GUARDS / ATOMIC_SAFE / ...)
///
/// Suppression syntax (reason string is mandatory):
///   code();  // DETLINT-OK(ordered-sink): keys drained into sorted vector
/// A suppression on its own line applies to the next line; trailing a
/// statement it applies to that line. Tags may be rule ids ("R2") or rule
/// names ("ordered-sink").
///
/// File-level exemptions come from an allowlist config (detlint.conf):
///   R1 bench/fleet_scale.cc   wall-clock timing of the bench itself
/// Each entry names a rule, a repo-relative file (or "dir/" prefix) and a
/// mandatory reason.
namespace detlint {

struct Finding {
  std::string file;     ///< repo-relative path
  int line = 0;         ///< 1-based
  std::string rule;     ///< "R1".."R6", or "SUPP" for malformed suppressions
  std::string tag;      ///< stable rule name, e.g. "nondet-source"
  std::string message;  ///< human-readable explanation

  [[nodiscard]] std::string str() const;
};

/// One allowlist entry parsed from the config file.
struct AllowEntry {
  std::string rule;    ///< "R1".."R6" (normalized from id or tag name)
  std::string path;    ///< exact file, or prefix when it ends with '/'
  std::string reason;  ///< mandatory free text
};

struct Config {
  std::vector<AllowEntry> allow;

  /// True when `rule` is allowlisted for repo-relative `path`.
  [[nodiscard]] bool allows(std::string_view rule, std::string_view path) const;
};

/// Parse a detlint.conf body. Lines: `<rule> <path> <reason...>`; '#'
/// comments and blank lines ignored. Throws std::runtime_error on a
/// malformed line (unknown rule, missing path or reason).
Config parse_config(const std::string& text);

struct FileReport {
  std::vector<Finding> findings;    ///< unsuppressed — these fail the build
  std::vector<Finding> suppressed;  ///< matched a DETLINT-OK with a reason
  int allowlisted = 0;              ///< dropped by a config AllowEntry
};

/// Lint one file's contents. `path` must be repo-relative (it drives the
/// built-in exemptions: R1 never fires in src/util/rng.*, R4 never fires
/// under src/nn/).
FileReport lint_file(const std::string& path, const std::string& content,
                     const Config& config);

/// Normalize "R1"/"nondet-source" etc. to a rule id; empty if unknown.
std::string normalize_rule(std::string_view rule_or_tag);

/// Rule id -> stable tag name ("R1" -> "nondet-source").
std::string rule_tag(std::string_view rule);

}  // namespace detlint

#endif  // PUFFER_TOOLS_DETLINT_HH
