#include "detlint/detlint.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace detlint {

namespace {

const std::map<std::string, std::string, std::less<>> kRuleTags = {
    {"R1", "nondet-source"}, {"R2", "ordered-sink"}, {"R3", "pointer-key"},
    {"R4", "fp-reduce"},     {"R5", "global-state"}, {"R6", "unannotated-sync"},
};

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

// ---------------------------------------------------------------------------
// Scrubber: blank out comments and string/char-literal contents so the rule
// engine only ever sees code, while collecting DETLINT-OK suppressions from
// the comment text it removes. Line structure is preserved exactly.
// ---------------------------------------------------------------------------

struct Suppression {
  std::string rule;  ///< normalized rule id
};

struct ScrubResult {
  std::vector<std::string> lines;  ///< code with comments/strings blanked
  /// line (1-based) -> suppressions that apply to that line
  std::map<int, std::vector<Suppression>> suppressions;
  std::vector<Finding> malformed;  ///< DETLINT-OK with bad tag / no reason
};

/// Parse every suppression marker — DETLINT-OK followed immediately by
/// "(tag): reason" — inside one comment.
void parse_comment(const std::string& path, const std::string& comment,
                   const int comment_line, const bool line_has_code,
                   ScrubResult& out) {
  static const std::string kMarker = "DETLINT-OK";
  size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    size_t cursor = pos + kMarker.size();
    pos = cursor;
    const int target_line = line_has_code ? comment_line : comment_line + 1;
    if (cursor >= comment.size() || comment[cursor] != '(') {
      // Prose mentioning the marker word (docs, this file) — only the form
      // with an immediately-following parenthesis is a suppression attempt.
      continue;
    }
    const size_t close = comment.find(')', cursor);
    if (close == std::string::npos) {
      out.malformed.push_back({path, comment_line, "SUPP", "bad-suppression",
                               "unterminated DETLINT-OK(rule"});
      continue;
    }
    const std::string tag = comment.substr(cursor + 1, close - cursor - 1);
    const std::string rule = normalize_rule(tag);
    if (rule.empty()) {
      out.malformed.push_back({path, comment_line, "SUPP", "bad-suppression",
                               "unknown rule '" + tag + "' in DETLINT-OK"});
      continue;
    }
    size_t reason = close + 1;
    if (reason >= comment.size() || comment[reason] != ':') {
      out.malformed.push_back({path, comment_line, "SUPP", "bad-suppression",
                               "DETLINT-OK(" + tag + ") missing ': reason'"});
      continue;
    }
    reason++;
    while (reason < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[reason]))) {
      reason++;
    }
    if (reason >= comment.size()) {
      out.malformed.push_back({path, comment_line, "SUPP", "bad-suppression",
                               "DETLINT-OK(" + tag + ") has an empty reason"});
      continue;
    }
    out.suppressions[target_line].push_back({rule});
  }
}

ScrubResult scrub(const std::string& path, const std::string& content) {
  ScrubResult out;
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  State state = State::Code;
  std::string line;          // scrubbed code of the current line
  std::string comment;       // text of the comment being collected
  int comment_start = 0;     // line the current comment opened on
  bool code_before = false;  // current comment trails code on its line
  std::string raw_delim;     // raw-string closing delimiter: )delim"
  int line_no = 1;

  auto flush_line = [&] {
    out.lines.push_back(line);
    line.clear();
    line_no++;
  };
  auto close_comment = [&] {
    // A comment's suppression targets its own line when code precedes it on
    // that line, else the next line (standalone-comment form).
    parse_comment(path, comment, comment_start, code_before, out);
    comment.clear();
  };

  const size_t n = content.size();
  for (size_t i = 0; i < n; i++) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          comment_start = line_no;
          code_before =
              line.find_first_not_of(" \t") != std::string::npos;
          i++;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          comment_start = line_no;
          code_before =
              line.find_first_not_of(" \t") != std::string::npos;
          i++;
        } else if (c == 'R' && next == '"' &&
                   (line.empty() || !(std::isalnum(static_cast<unsigned char>(
                                          line.back())) ||
                                      line.back() == '_'))) {
          // Raw string literal R"delim( ... )delim"
          size_t j = i + 2;
          std::string delim;
          while (j < n && content[j] != '(' && content[j] != '\n' &&
                 delim.size() < 16) {
            delim += content[j++];
          }
          if (j < n && content[j] == '(') {
            raw_delim = ")" + delim + "\"";
            state = State::Raw;
            line += "\"\"";  // leave an empty-literal placeholder
            i = j;           // consumed through the opening '('
          } else {
            line += c;  // not actually a raw string
          }
        } else if (c == '"') {
          state = State::String;
          line += '"';
        } else if (c == '\'') {
          state = State::Char;
          line += '\'';
        } else if (c == '\n') {
          flush_line();
        } else {
          line += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          close_comment();
          state = State::Code;
          flush_line();
        } else {
          comment += c;
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          close_comment();
          state = State::Code;
          i++;
        } else {
          comment += c;
          if (c == '\n') {
            flush_line();
          }
        }
        break;
      case State::String:
        if (c == '\\' && next != '\0') {
          i++;  // skip escaped char
        } else if (c == '"') {
          line += '"';
          state = State::Code;
        } else if (c == '\n') {
          flush_line();  // unterminated; tolerate
          state = State::Code;
        }
        break;
      case State::Char:
        if (c == '\\' && next != '\0') {
          i++;
        } else if (c == '\'') {
          line += '\'';
          state = State::Code;
        } else if (c == '\n') {
          flush_line();
          state = State::Code;
        }
        break;
      case State::Raw:
        if (c == '\n') {
          flush_line();
        } else if (c == raw_delim[0] &&
                   content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::Code;
        }
        break;
    }
  }
  if (state == State::LineComment || state == State::BlockComment) {
    close_comment();
  }
  flush_line();  // final (possibly empty) line
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over scrubbed lines: identifiers/numbers/punctuation with line
// numbers. Multi-char operators are split into single chars except "::",
// "->", which the rules need as units.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

std::vector<Token> tokenize(const std::vector<std::string>& lines) {
  std::vector<Token> tokens;
  bool continuation = false;  // previous line was a '#' directive ending in \'
  for (size_t li = 0; li < lines.size(); li++) {
    const std::string& line = lines[li];
    const int line_no = static_cast<int>(li) + 1;
    // Preprocessor directives (and their backslash continuations) would
    // corrupt statement tracking — they carry no ';' — so drop them whole.
    const size_t first = line.find_first_not_of(" \t");
    const bool directive =
        continuation || (first != std::string::npos && line[first] == '#');
    if (directive) {
      continuation = !line.empty() && line.back() == '\\';
      continue;
    }
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        i++;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '_')) {
          j++;
        }
        tokens.push_back({line.substr(i, j - i), line_no, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '.' || line[j] == '_')) {
          j++;
        }
        tokens.push_back({line.substr(i, j - i), line_no, false});
        i = j;
      } else if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", line_no, false});
        i += 2;
      } else if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", line_no, false});
        i += 2;
      } else {
        tokens.push_back({std::string(1, c), line_no, false});
        i++;
      }
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string path, const std::string& content, const Config& config)
      : path_(std::move(path)), config_(config) {
    ScrubResult scrubbed = scrub(path_, content);
    // A standalone suppression applies to the next line that contains code:
    // skip forward over blank and comment-only lines (scrubbed to
    // whitespace) so a multi-line explanation comment above the suppressed
    // statement works naturally. Trailing suppressions sit on a line with
    // code and are left where they are.
    const auto is_blank = [](const std::string& line) {
      return std::all_of(line.begin(), line.end(), [](const char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
      });
    };
    for (auto& [line, supps] : scrubbed.suppressions) {
      size_t target = static_cast<size_t>(line);
      while (target < scrubbed.lines.size() && target >= 1 &&
             is_blank(scrubbed.lines[target - 1])) {
        target++;
      }
      auto& dst = suppressions_[static_cast<int>(target)];
      dst.insert(dst.end(), supps.begin(), supps.end());
    }
    report_.findings = std::move(scrubbed.malformed);
    tokens_ = tokenize(scrubbed.lines);
  }

  FileReport run() {
    const bool in_rng =
        starts_with(path_, "src/util/rng.");  // the one sanctioned source
    const bool in_nn = starts_with(path_, "src/nn/");
    if (!in_rng) {
      rule_r1();
    }
    rule_r2();
    rule_r3();
    if (!in_nn) {
      rule_r4();
    }
    rule_r5_r6();
    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return std::move(report_);
  }

 private:
  const Token& tok(const size_t i) const { return tokens_[i]; }
  std::string_view text(const size_t i) const {
    static const std::string kNone;
    return i < tokens_.size() ? tokens_[i].text : kNone;
  }
  std::string_view prev(const size_t i) const {
    return i == 0 ? std::string_view{} : std::string_view{tokens_[i - 1].text};
  }

  void flag(const std::string& rule, const int line,
            const std::string& message) {
    if (config_.allows(rule, path_)) {
      report_.allowlisted++;
      return;
    }
    const auto it = suppressions_.find(line);
    if (it != suppressions_.end()) {
      for (const Suppression& s : it->second) {
        if (s.rule == rule) {
          report_.suppressed.push_back(
              {path_, line, rule, rule_tag(rule), message});
          return;
        }
      }
    }
    report_.findings.push_back({path_, line, rule, rule_tag(rule), message});
  }

  /// Index just past a balanced <...> starting at the '<' at `open`
  /// (tokens_[open] must be "<"). Returns open + 1 if unbalanced.
  size_t skip_angles(const size_t open) const {
    int depth = 0;
    for (size_t i = open; i < tokens_.size(); i++) {
      if (text(i) == "<") {
        depth++;
      } else if (text(i) == ">") {
        depth--;
        if (depth == 0) {
          return i + 1;
        }
      } else if (text(i) == ";") {
        break;  // never spans a statement
      }
    }
    return open + 1;
  }

  // R1: nondeterministic sources. Flags calls (identifier followed by '(')
  // to the libc/std entropy, clock and environment APIs, plus any mention
  // of std::random_device and the std::chrono clock ::now() readers.
  void rule_r1() {
    static const std::set<std::string, std::less<>> kCalls = {
        "rand", "srand", "rand_r", "random", "srandom", "drand48", "lrand48",
        "clock", "time", "timespec_get", "gettimeofday", "clock_gettime",
        "getenv", "secure_getenv",
    };
    static const std::set<std::string, std::less<>> kClocks = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "utc_clock", "file_clock",
    };
    for (size_t i = 0; i < tokens_.size(); i++) {
      if (!tok(i).ident) {
        continue;
      }
      const std::string& t = tok(i).text;
      if (t == "random_device") {
        flag("R1", tok(i).line,
             "std::random_device is nondeterministic — derive streams from "
             "util::Rng (seeded, splittable) instead");
      } else if (kClocks.count(t) > 0 && text(i + 1) == "::" &&
                 text(i + 2) == "now") {
        flag("R1", tok(i).line,
             "std::chrono::" + t +
                 "::now() reads wall/CPU time — results must depend only on "
                 "virtual (simulated) time");
      } else if (kCalls.count(t) > 0 && text(i + 1) == "(" &&
                 prev(i) != "." && prev(i) != "->") {
        // `.time(` / `->time(` are member calls on user types, not ::time.
        flag("R1", tok(i).line,
             "call to '" + t +
                 "' is a nondeterministic source — use util::Rng / virtual "
                 "time, or allowlist this I/O file in detlint.conf");
      }
    }
  }

  // R2: iteration over unordered containers. Tracks names declared with an
  // unordered type in this file, then flags range-for statements (and
  // explicit .begin() walks) over them.
  void rule_r2() {
    static const std::set<std::string, std::less<>> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    std::set<std::string> names;
    for (size_t i = 0; i < tokens_.size(); i++) {
      if (kUnordered.count(tok(i).text) == 0 || text(i + 1) != "<") {
        continue;
      }
      size_t j = skip_angles(i + 1);
      while (j < tokens_.size() &&
             (text(j) == "&" || text(j) == "*" || text(j) == "const")) {
        j++;
      }
      if (j < tokens_.size() && tok(j).ident) {
        names.insert(tok(j).text);
      }
    }
    if (names.empty()) {
      return;
    }
    for (size_t i = 0; i < tokens_.size(); i++) {
      if (tok(i).text == "for" && text(i + 1) == "(") {
        // Range-for: a ':' at parenthesis depth 1; the expression after it
        // is the range.
        int depth = 0;
        size_t colon = 0;
        size_t close = 0;
        for (size_t j = i + 1; j < tokens_.size(); j++) {
          if (text(j) == "(") {
            depth++;
          } else if (text(j) == ")") {
            depth--;
            if (depth == 0) {
              close = j;
              break;
            }
          } else if (text(j) == ":" && depth == 1 && colon == 0) {
            colon = j;
          } else if (text(j) == ";") {
            break;  // classic for, not range-for
          }
        }
        if (colon == 0 || close == 0) {
          continue;
        }
        for (size_t j = colon + 1; j < close; j++) {
          if (tok(j).ident && names.count(tok(j).text) > 0) {
            flag("R2", tok(j).line,
                 "iteration over unordered container '" + tok(j).text +
                     "' — hash order is not deterministic across libraries/"
                     "runs; iterate a sorted view or use std::map, or "
                     "suppress with DETLINT-OK(ordered-sink) if the order "
                     "provably cannot affect results");
            break;
          }
        }
      } else if (tok(i).ident && names.count(tok(i).text) > 0 &&
                 text(i + 1) == "." && text(i + 2) == "begin" &&
                 text(i + 3) == "(") {
        flag("R2", tok(i).line,
             "explicit iterator walk over unordered container '" +
                 tok(i).text + "' — hash order is not deterministic");
      }
    }
  }

  // R3: associative containers keyed on raw pointers — iteration order is
  // address order, which ASLR re-rolls every run.
  void rule_r3() {
    static const std::set<std::string, std::less<>> kAssoc = {
        "map", "set", "multimap", "multiset",
        "unordered_map", "unordered_set",
    };
    for (size_t i = 0; i + 1 < tokens_.size(); i++) {
      if (kAssoc.count(tok(i).text) == 0 || text(i + 1) != "<" ||
          prev(i) != "::" || i < 2 || text(i - 2) != "std") {
        continue;
      }
      // First top-level template argument: tokens until ',' or '>' at
      // angle depth 1.
      int depth = 0;
      size_t last = 0;  // last token of the first argument
      for (size_t j = i + 1; j < tokens_.size(); j++) {
        const std::string_view t = text(j);
        if (t == "<" || t == "(") {
          depth++;
        } else if (t == ">" || t == ")") {
          depth--;
          if (depth == 0) {
            break;
          }
        } else if (t == "," && depth == 1) {
          break;
        } else if (t == ";") {
          break;
        }
        last = j;
      }
      if (last > i + 1 && text(last) == "*") {
        flag("R3", tok(i).line,
             "std::" + tok(i).text +
                 " keyed on a raw pointer — iteration/ordering follows "
                 "allocation addresses, which differ run to run; key on a "
                 "stable id (index, name) instead");
      }
    }
  }

  // R4: floating-point reductions through library folds. Their evaluation
  // order is implementation-defined (std::reduce explicitly so); the repo's
  // contract requires fixed-order accumulation chains, which live in the
  // src/nn kernel layer.
  void rule_r4() {
    static const std::set<std::string, std::less<>> kFolds = {
        "accumulate", "reduce", "transform_reduce", "inner_product",
    };
    for (size_t i = 0; i < tokens_.size(); i++) {
      if (kFolds.count(tok(i).text) == 0) {
        continue;
      }
      const bool std_qualified = prev(i) == "::" && i >= 2 &&
                                 text(i - 2) == "std";
      const bool call = text(i + 1) == "(";
      if ((std_qualified && call) ||
          (call && prev(i) != "." && prev(i) != "->" && prev(i) != "::")) {
        flag("R4", tok(i).line,
             "library fold 'std::" + tok(i).text +
                 "' outside src/nn/ — reduction order is not pinned; write "
                 "an explicit fixed-order loop (see the kernel layer for "
                 "the sanctioned chains)");
      }
    }
  }

  enum class Scope { Namespace, Type, Function, Init, Block };

  // R5 + R6 share a scope tracker: R5 fires on mutable declarations at
  // namespace scope, R6 on unannotated synchronization members at class
  // scope. Statements are token runs ending at ';' (or at an access
  // specifier's ':'); braced initializers stay inside their statement.
  void rule_r5_r6() {
    std::vector<Scope> stack;
    size_t stmt_begin = 0;  // first token of the current statement

    auto at_namespace_scope = [&] {
      return std::all_of(stack.begin(), stack.end(),
                         [](Scope s) { return s == Scope::Namespace; });
    };
    auto in_type_scope = [&] {
      return !stack.empty() && stack.back() == Scope::Type;
    };

    for (size_t i = 0; i < tokens_.size(); i++) {
      const std::string& t = tok(i).text;
      if (t == "{") {
        const Scope kind = classify_open(stmt_begin, i);
        stack.push_back(kind);
        if (kind != Scope::Init) {
          stmt_begin = i + 1;
        }
      } else if (t == "}") {
        Scope kind = Scope::Block;
        if (!stack.empty()) {
          kind = stack.back();
          stack.pop_back();
        }
        if (kind != Scope::Init) {
          stmt_begin = i + 1;
        }
      } else if (t == ";") {
        if (at_namespace_scope()) {
          check_r5(stmt_begin, i);
        } else if (in_type_scope()) {
          check_r6(stmt_begin, i);
        }
        stmt_begin = i + 1;
      } else if (t == ":" && (prev(i) == "public" || prev(i) == "private" ||
                              prev(i) == "protected")) {
        stmt_begin = i + 1;  // access specifier, not part of a declaration
      }
    }
  }

  /// Decide what kind of scope the '{' at `open` introduces, from the
  /// statement tokens [stmt_begin, open).
  Scope classify_open(const size_t stmt_begin, const size_t open) const {
    const std::string_view before = prev(open);
    for (size_t j = stmt_begin; j < open; j++) {
      const std::string& t = tokens_[j].text;
      if (t == "namespace" || t == "extern") {
        return Scope::Namespace;
      }
      if ((t == "class" || t == "struct" || t == "union" || t == "enum") &&
          before != ")") {
        // `struct Foo make() {` is a function — the ')' right before the
        // brace wins.
        return Scope::Type;
      }
    }
    if (before == ")" || before == "try" || before == "do" ||
        before == "else" || before == "const" || before == "noexcept" ||
        before == "override" || before == "final" ||
        before == "NO_THREAD_SAFETY_ANALYSIS") {
      return Scope::Function;
    }
    if (before == "=" || before == "," || before == "(" || before == "[" ||
        before == "{" || before == "return") {
      return Scope::Init;
    }
    if (open > 0 && tokens_[open - 1].ident) {
      return Scope::Init;  // braced initializer `name{...}`
    }
    return Scope::Block;
  }

  /// R5 over one namespace-scope statement [begin, end).
  void check_r5(const size_t begin, const size_t end) {
    if (begin >= end) {
      return;
    }
    static const std::set<std::string, std::less<>> kSkipLead = {
        "using",  "typedef", "template", "static_assert", "friend",
        "struct", "class",   "union",    "enum",          "namespace",
        "extern", "operator",
    };
    std::string_view first = tokens_[begin].text;
    if ((first == "inline" || first == "static") && begin + 1 < end) {
      first = tokens_[begin + 1].text;  // look past storage-class keywords
    }
    if (kSkipLead.count(std::string(first)) > 0) {
      return;
    }
    // A flaggable declaration has an initializer ('=' or braced) at top
    // level, or declares a synchronization object outright; immutable
    // (const/constexpr/constinit), thread-confined (thread_local) and
    // function declarations (top-level '(' before the initializer) pass.
    int angle = 0;
    bool has_init = false;
    bool has_sync_type = false;
    for (size_t j = begin; j < end; j++) {
      const std::string& t = tokens_[j].text;
      if (t == "<") {
        angle++;
      } else if (t == ">") {
        angle = std::max(0, angle - 1);
      } else if (t == "const" || t == "constexpr" || t == "constinit" ||
                 t == "thread_local") {
        return;  // immutable or thread-confined: not shared mutable state
      } else if (t == "atomic" || t == "mutex" || t == "Mutex") {
        has_sync_type = true;
      } else if ((t == "=" || t == "{") && angle == 0) {
        has_init = true;
        break;
      } else if (t == "(" && angle == 0) {
        return;  // function declaration / definition header
      }
    }
    if (!has_init && !has_sync_type) {
      return;  // no initializer and not a sync object: likely not a variable
    }
    flag("R5", tokens_[begin].line,
         "mutable namespace-scope state — globals shared across sessions/"
         "threads break replay; move into an object threaded through "
         "callers, or annotate the singleton with "
         "DETLINT-OK(global-state) and a reason");
  }

  /// R6 over one class-scope member statement [begin, end).
  void check_r6(const size_t begin, const size_t end) {
    if (begin >= end) {
      return;
    }
    static const std::set<std::string, std::less<>> kAnnotations = {
        "GUARDED_BY",      "PT_GUARDED_BY", "REQUIRES",
        "REQUIRES_SHARED", "EXCLUDES",      "ACQUIRED_BEFORE",
        "ACQUIRED_AFTER",  "CAPABILITY",    "RETURN_CAPABILITY",
        "GUARDS",          "ATOMIC_SAFE",
    };
    static const std::set<std::string, std::less<>> kSkipLead = {
        "using", "typedef", "template", "static_assert", "friend",
        "struct", "class", "union", "enum", "operator",
    };
    if (kSkipLead.count(tokens_[begin].text) > 0) {
      return;
    }
    // Locate a synchronization type used as the member's type. A top-level
    // '(' that is not an annotation's argument list means this statement is
    // a function declaration (member variables only take brace-or-equal
    // initializers), so it cannot be a sync member.
    int angle = 0;
    size_t sync_tok = 0;
    bool annotated = false;
    for (size_t j = begin; j < end; j++) {
      const std::string& t = tokens_[j].text;
      if (t == "<") {
        angle++;
      } else if (t == ">") {
        angle = std::max(0, angle - 1);
      } else if (t == "(" && angle == 0) {
        if (j == begin || kAnnotations.count(tokens_[j - 1].text) == 0) {
          return;  // function declaration
        }
      } else if (kAnnotations.count(t) > 0) {
        annotated = true;
      } else if (sync_tok == 0 && angle == 0 &&
                 (t == "mutex" || t == "shared_mutex" ||
                  t == "recursive_mutex" || t == "atomic" || t == "Mutex")) {
        // Only the member's own type position (angle depth 0) counts:
        // std::unique_lock<std::mutex> is the lock wrapper's business.
        if (prev(j) == "." || prev(j) == "->") {
          continue;  // member access, not a type
        }
        sync_tok = j;
      }
    }
    if (sync_tok != 0 && !annotated) {
      flag("R6", tokens_[sync_tok].line,
           "synchronization member '" + tokens_[sync_tok].text +
               "' without a thread-safety annotation — state what it guards "
               "(GUARDS/GUARDED_BY) or why lock-free access is safe "
               "(ATOMIC_SAFE); see src/util/thread_annotations.hh");
    }
  }

  std::string path_;
  const Config& config_;
  std::vector<Token> tokens_;
  std::map<int, std::vector<Suppression>> suppressions_;
  FileReport report_;
};

}  // namespace

std::string Finding::str() const {
  std::ostringstream out;
  out << file << ":" << line << ": " << rule << " [" << tag << "] " << message;
  return out.str();
}

std::string normalize_rule(const std::string_view rule_or_tag) {
  const auto direct = kRuleTags.find(rule_or_tag);
  if (direct != kRuleTags.end()) {
    return direct->first;
  }
  for (const auto& [rule, tag] : kRuleTags) {
    if (tag == rule_or_tag) {
      return rule;
    }
  }
  return {};
}

std::string rule_tag(const std::string_view rule) {
  const auto it = kRuleTags.find(rule);
  return it == kRuleTags.end() ? std::string{} : it->second;
}

bool Config::allows(const std::string_view rule,
                    const std::string_view path) const {
  for (const AllowEntry& entry : allow) {
    if (entry.rule != rule) {
      continue;
    }
    if (entry.path == path) {
      return true;
    }
    if (!entry.path.empty() && entry.path.back() == '/' &&
        starts_with(path, entry.path)) {
      return true;
    }
  }
  return false;
}

Config parse_config(const std::string& text) {
  Config config;
  std::istringstream stream{text};
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    line_no++;
    const size_t hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream fields{line};
    std::string rule_text;
    std::string path;
    if (!(fields >> rule_text >> path)) {
      if (!rule_text.empty()) {
        throw std::runtime_error("detlint.conf:" + std::to_string(line_no) +
                                 ": entry needs <rule> <path> <reason>");
      }
      continue;  // blank / comment-only line
    }
    const std::string rule = normalize_rule(rule_text);
    if (rule.empty()) {
      throw std::runtime_error("detlint.conf:" + std::to_string(line_no) +
                               ": unknown rule '" + rule_text + "'");
    }
    std::string reason;
    std::getline(fields, reason);
    const size_t start = reason.find_first_not_of(" \t");
    reason = start == std::string::npos ? std::string{} : reason.substr(start);
    if (reason.empty()) {
      throw std::runtime_error("detlint.conf:" + std::to_string(line_no) +
                               ": allowlist entry for '" + path +
                               "' needs a reason");
    }
    config.allow.push_back({rule, path, reason});
  }
  return config;
}

FileReport lint_file(const std::string& path, const std::string& content,
                     const Config& config) {
  Linter linter{path, content, config};
  return linter.run();
}

}  // namespace detlint
